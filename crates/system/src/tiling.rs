//! Tiled SpMV on the HHT (§5.5 fn. 6).
//!
//! The paper's synthesized HHT was verified on 16×16 matrices ("Due to the
//! limitations of the Synopsys tool available to us, we were unable to
//! obtain the results for larger matrix size") and states that "any bigger
//! matrices can be broken into 16*16 sized matrices on HHT and supply
//! vector values to RISCV core". This module implements that software
//! tiling scheme:
//!
//! - the host splits the matrix into `tile x tile` blocks, storing each
//!   non-empty block as a local-index CSR in SRAM plus an 8-word *tile
//!   descriptor* (array bases, row count, nnz);
//! - a single kernel loops over the descriptor table, reprogramming the
//!   HHT MMRs per tile and accumulating partial sums into `y`;
//! - the per-tile MMR reprogramming and `y` read-modify-write are the
//!   tiling overhead the `ablate-tiling` figure quantifies.

use crate::config::SystemConfig;
use crate::kernels::emit_hht_setup_regs;
use crate::layout::ImageBuilder;
use crate::runner::RunOutput;
use crate::system::System;
use hht_accel::hht::window;
use hht_accel::mmr::reg;
use hht_accel::Mode;
use hht_isa::builder::KernelBuilder;
use hht_isa::{FReg, Program, Reg, VReg};
use hht_mem::{map, Sram};
use hht_sparse::{kernels as golden, CsrMatrix, DenseVector, SparseFormat};

/// Word offsets inside one 8-word tile descriptor.
mod desc {
    pub const ROWS_BASE: i32 = 0;
    pub const COLS_BASE: i32 = 4;
    pub const VALS_BASE: i32 = 8;
    pub const V_BASE: i32 = 12;
    pub const Y_BASE: i32 = 16;
    pub const NUM_ROWS: i32 = 20;
    pub const M_NNZ: i32 = 24;
    /// Descriptor stride in bytes.
    pub const STRIDE: i32 = 32;
}

/// Result of a tiled run.
#[derive(Debug, Clone)]
pub struct TiledRun {
    /// Output and statistics.
    pub out: RunOutput,
    /// Number of non-empty tiles processed.
    pub tiles: usize,
}

/// Split `m` into `tile x tile` blocks and lay each non-empty block out in
/// SRAM, returning the descriptor-table base and the tile count. `v_base`
/// and `y_base` are the already-placed full vectors.
fn build_tiles(
    b: &mut ImageBuilder<'_>,
    m: &CsrMatrix,
    tile: usize,
    v_base: u32,
    y_base: u32,
) -> (u32, usize) {
    let triplets = m.triplets();
    let blocks_r = m.rows().div_ceil(tile);
    let blocks_c = m.cols().div_ceil(tile);
    // Bucket triplets into blocks (block-row-major).
    let mut buckets: Vec<Vec<(usize, usize, f32)>> = vec![Vec::new(); blocks_r * blocks_c];
    for (r, c, val) in triplets {
        let (rb, cb) = (r / tile, c / tile);
        buckets[rb * blocks_c + cb].push((r % tile, c % tile, val));
    }
    let mut descriptors: Vec<u32> = Vec::new();
    let mut tiles = 0usize;
    for rb in 0..blocks_r {
        let rows_in_block = (m.rows() - rb * tile).min(tile);
        for cb in 0..blocks_c {
            let bucket = &buckets[rb * blocks_c + cb];
            if bucket.is_empty() {
                continue;
            }
            let cols_in_block = (m.cols() - cb * tile).min(tile);
            let sub = CsrMatrix::from_triplets(rows_in_block, cols_in_block, bucket)
                .expect("local tile coordinates are valid");
            let rows_base = b.place_words(sub.row_ptr());
            let cols_base = b.place_words(sub.col_indices());
            let vals_base = b.place_f32s(sub.values());
            descriptors.extend_from_slice(&[
                rows_base,
                cols_base,
                vals_base,
                v_base + 4 * (cb * tile) as u32,
                y_base + 4 * (rb * tile) as u32,
                rows_in_block as u32,
                sub.nnz() as u32,
                0,
            ]);
            tiles += 1;
        }
    }
    let desc_base = b.place_words(&descriptors);
    (desc_base, tiles)
}

/// The tile-loop kernel: per descriptor, reprogram the HHT and run the
/// accumulating SpMV inner loop.
fn tiled_kernel(desc_base: u32, tiles: usize) -> Program {
    let (a0, a2, a5) = (Reg::a(0), Reg::a(2), Reg::a(5));
    let a6 = Reg::a(6);
    let (s0, s1, s2, s4, s5, s6) =
        (Reg::s(0), Reg::s(1), Reg::s(2), Reg::s(4), Reg::s(5), Reg::s(6));
    let (s10, s11) = (Reg::s(10), Reg::s(11));
    let (t0, t2, t5, t6) = (Reg::t(0), Reg::t(2), Reg::t(5), Reg::t(6));
    let (v0, v2, v3, v4, v5) =
        (VReg::new(0), VReg::new(2), VReg::new(3), VReg::new(4), VReg::new(5));
    let (fa0, fa1) = (FReg::a(0), FReg::a(1));
    let mut b = KernelBuilder::new(0);
    b.li(t6, map::HHT_MMR_BASE as i32);
    // Mode and element size are tile-invariant: program them once.
    b.li(t5, 4);
    b.sw(t5, reg::ELEMENT_SIZES as i32, t6);
    b.li(t5, Mode::SpMV as i32);
    b.sw(t5, reg::MODE as i32, t6);
    b.li(a6, (map::HHT_BUF_BASE + window::PRIMARY) as i32);
    b.li(s11, desc_base as i32);
    b.li(s10, tiles as i32);
    let tile_loop = b.here();
    b.name("tile_loop");
    let all_done = b.label();
    b.beqz(s10, all_done);
    // Load the descriptor.
    b.lw(a0, desc::ROWS_BASE, s11);
    b.lw(t0, desc::COLS_BASE, s11);
    b.lw(a2, desc::VALS_BASE, s11);
    b.lw(t2, desc::V_BASE, s11);
    b.lw(s6, desc::Y_BASE, s11); // y cursor for this tile's row block
    b.lw(a5, desc::NUM_ROWS, s11);
    b.lw(t5, desc::M_NNZ, s11);
    // Reprogram the HHT from registers (START last).
    emit_hht_setup_regs(&mut b, t6, a0, t0, a2, t2, a5, t5);
    // Accumulating SpMV over the tile's rows.
    b.li(s0, 0);
    b.lw(s1, 0, a0);
    b.addi(s5, a0, 4);
    b.slli(t0, s1, 2);
    b.add(s4, a2, t0);
    let row_loop = b.here();
    let tile_done = b.label();
    b.bge(s0, a5, tile_done);
    b.lw(t2, 0, s5);
    b.sub(s2, t2, s1);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v0, 0);
    let inner = b.here();
    let row_done = b.label();
    b.beqz(s2, row_done);
    b.vsetvli(t5, s2);
    b.vle32(v2, a6);
    b.vle32(v3, s4);
    b.vfmacc_vv(v0, v2, v3);
    b.slli(t0, t5, 2);
    b.add(s4, s4, t0);
    b.sub(s2, s2, t5);
    b.j(inner);
    b.bind(row_done);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v4, 0);
    b.vfredosum_vs(v5, v0, v4);
    b.vfmv_f_s(fa0, v5);
    // Accumulate into y (other column-blocks of this row contribute too).
    b.flw(fa1, 0, s6);
    b.fadd_s(fa0, fa0, fa1);
    b.fsw(fa0, 0, s6);
    b.addi(s6, s6, 4);
    b.addi(s5, s5, 4);
    b.mv(s1, t2);
    b.addi(s0, s0, 1);
    b.j(row_loop);
    b.bind(tile_done);
    b.addi(s11, s11, desc::STRIDE);
    b.addi(s10, s10, -1);
    b.j(tile_loop);
    b.bind(all_done);
    b.ebreak();
    b.build()
}

/// Run SpMV through the HHT in `tile x tile` blocks, verifying against the
/// golden kernel.
pub fn run_spmv_tiled(cfg: &SystemConfig, m: &CsrMatrix, v: &DenseVector, tile: usize) -> TiledRun {
    assert!(tile >= 1, "tile must be positive");
    assert_eq!(m.cols(), v.len(), "matrix/vector width mismatch");
    // Size the SRAM: tiles add (tile+1) row-ptr words per non-empty block
    // plus the descriptor table; over-provision generously.
    let blocks = m.rows().div_ceil(tile) * m.cols().div_ceil(tile);
    let words = 2 * m.nnz() + blocks * (tile + 1 + 8) + v.len() + m.rows() + 64;
    let needed = (0x100 + 4 * words as u64 + 32 * (blocks as u64 + 8)).next_multiple_of(4096);
    let mut sram = Sram::new((cfg.ram_size as u64).max(needed) as u32, cfg.ram_word_cycles);
    let mut builder = ImageBuilder::new(&mut sram, 0x100);
    let v_base = builder.place_f32s(v.as_slice());
    let y_base = builder.place_output(m.rows());
    let (desc_base, tiles) = build_tiles(&mut builder, m, tile, v_base, y_base);
    let program = tiled_kernel(desc_base, tiles);
    let mut sys = System::new(cfg, program, sram);
    let stats = sys.run().expect("tiled SpMV kernel fault");
    let y = sys.read_output(y_base, m.rows());
    let gold = golden::spmv(m, v).expect("shapes validated");
    let scale = gold.as_slice().iter().fold(1.0f32, |a, b| a.max(b.abs()));
    assert!(y.max_abs_diff(&gold) <= 1e-3 * scale, "tiled SpMV diverges from golden (tile={tile})");
    // Counters first, then drain: `take_events` resets the sink rings.
    let sched = sys.sched_stats();
    let dropped = sys.obs_drops();
    let events = sys.take_events();
    TiledRun { out: RunOutput { y, stats, events, recovery: None, sched, dropped }, tiles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use hht_sparse::generate;

    #[test]
    fn tiled_matches_untiled_numerically() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(48, 48, 0.6, 7);
        let v = generate::random_dense_vector(48, 8);
        let untiled = runner::run_spmv_hht(&cfg, &m, &v);
        for tile in [8usize, 16, 24, 48] {
            let t = run_spmv_tiled(&cfg, &m, &v, tile);
            assert!(t.out.y.max_abs_diff(&untiled.y) < 1e-3, "tile={tile} diverges");
        }
    }

    #[test]
    fn paper_tile_size_16() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(64, 64, 0.5, 17);
        let v = generate::random_dense_vector(64, 18);
        let t = run_spmv_tiled(&cfg, &m, &v, 16);
        // 4x4 block grid at 50% sparsity: every block non-empty.
        assert_eq!(t.tiles, 16);
    }

    #[test]
    fn tiling_overhead_shrinks_with_tile_size() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(64, 64, 0.5, 27);
        let v = generate::random_dense_vector(64, 28);
        let small = run_spmv_tiled(&cfg, &m, &v, 8);
        let large = run_spmv_tiled(&cfg, &m, &v, 32);
        assert!(
            small.out.stats.cycles > large.out.stats.cycles,
            "8-tiles ({}) should cost more than 32-tiles ({})",
            small.out.stats.cycles,
            large.out.stats.cycles
        );
    }

    #[test]
    fn non_divisible_dimensions() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(37, 53, 0.7, 37);
        let v = generate::random_dense_vector(53, 38);
        let t = run_spmv_tiled(&cfg, &m, &v, 16);
        assert!(t.tiles > 0);
    }

    #[test]
    fn empty_matrix_tiles_to_nothing() {
        let cfg = SystemConfig::paper_default();
        let m = generate::random_csr(16, 16, 1.0, 47);
        let v = generate::random_dense_vector(16, 48);
        let t = run_spmv_tiled(&cfg, &m, &v, 8);
        assert_eq!(t.tiles, 0);
        assert!(t.out.y.as_slice().iter().all(|x| *x == 0.0));
    }
}
