//! The heterogeneous CPU + HHT system (the paper's Fig. 2 MCU).
//!
//! This crate wires the pieces together and is the main entry point of the
//! reproduction:
//!
//! - [`config`] — [`config::SystemConfig`]: Table 1 plus the calibrated
//!   free parameters.
//! - [`layout`] — builds the SRAM image for a problem instance and records
//!   where each array lives.
//! - [`kernels`] — the kernel library: every baseline and HHT-assisted
//!   SpMV / SpMSpV program, emitted as real RV32 assembly through
//!   `hht-isa`.
//! - [`system`] — [`system::System`]: the lock-step cycle loop (CPU steps
//!   first each cycle, then the HHT, sharing the SRAM port).
//! - [`runner`] — one-call "run kernel X on problem Y" helpers that also
//!   verify the numeric result against the `hht-sparse` golden kernels.
//! - [`experiments`] — the figure-level drivers (speedup sweeps, wait-cycle
//!   fractions, vector-width sensitivity, DNN suite).
//!
//! ```
//! use hht_system::config::SystemConfig;
//! use hht_system::experiments::spmv_point;
//!
//! let cfg = SystemConfig::paper_default();
//! let r = spmv_point(&cfg, 64, 0.7, 2);
//! assert!(r.speedup() > 1.0);
//! ```

pub mod config;
pub mod experiments;
pub mod fabric;
pub mod kernels;
pub mod layout;
pub mod legacy;
pub mod metrics;
pub mod runner;
pub mod system;
pub mod tiling;

pub use config::{SystemConfig, TraceConfig};
pub use fabric::{ArbPolicy, Fabric, FabricConfig, FabricStats, SchedStats, TileSchedStats};
pub use legacy::LegacySystem;
pub use metrics::MetricsSnapshot;
pub use runner::{RecoveryReport, RunOutput, RunStats};
pub use system::{FaultSummary, System};
