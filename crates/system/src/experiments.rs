//! Figure-level experiment drivers.
//!
//! Each function reproduces the measurement behind one paper figure; the
//! `hht-bench` crate calls these to print the actual series.
//!
//! Every sweep is a grid of independent, deterministically seeded cells, so
//! each has a `*_jobs` variant fanning the cells across host threads via
//! `hht-exec`; results come back in input order, so output is identical for
//! every `jobs` value (the serial names delegate to `jobs = 1`).

use crate::config::SystemConfig;
use crate::runner;
use hht_sparse::generate;
use serde::{Deserialize, Serialize};

/// Group a flat cell-major result list back into `(key, points)` series:
/// `flat` holds `keys.len()` consecutive runs of `per` points each.
fn regroup<K: Copy, P>(keys: &[K], per: usize, flat: Vec<P>) -> Vec<(K, Vec<P>)> {
    assert_eq!(flat.len(), keys.len() * per);
    let mut flat = flat.into_iter();
    keys.iter().map(|&k| (k, flat.by_ref().take(per).collect())).collect()
}

/// Sparsity levels the paper sweeps (10% … 90%).
pub const PAPER_SPARSITIES: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// One (baseline, HHT) comparison at a parameter point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Fraction of zeros in the matrix.
    pub sparsity: f64,
    /// Baseline (CPU-only) cycles.
    pub baseline_cycles: u64,
    /// HHT-assisted cycles.
    pub hht_cycles: u64,
    /// Fraction of HHT-run time the CPU idled waiting for the HHT.
    pub cpu_wait_frac: f64,
    /// Fraction of HHT-run time the HHT was throttled by full buffers.
    pub hht_wait_frac: f64,
}

impl SpeedupPoint {
    /// Baseline / HHT cycle ratio.
    pub fn speedup(&self) -> f64 {
        self.baseline_cycles as f64 / self.hht_cycles.max(1) as f64
    }
}

/// Deterministic seed per experiment point so sweeps are reproducible.
fn seed_for(tag: u64, n: usize, sparsity: f64) -> u64 {
    tag.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (n as u64).wrapping_mul(0x85eb_ca6b)
        ^ ((sparsity * 1000.0) as u64)
}

/// One SpMV measurement: `n x n` random matrix at `sparsity`, HHT with
/// `num_buffers` buffers (Figs. 4/6).
pub fn spmv_point(cfg: &SystemConfig, n: usize, sparsity: f64, num_buffers: usize) -> SpeedupPoint {
    let cfg_h = cfg.with_buffers(num_buffers);
    let seed = seed_for(1, n, sparsity);
    let m = generate::random_csr(n, n, sparsity, seed);
    let v = generate::random_dense_vector(n, seed ^ 1);
    let base = runner::run_spmv_baseline(cfg, &m, &v);
    let hht = runner::run_spmv_hht(&cfg_h, &m, &v);
    SpeedupPoint {
        sparsity,
        baseline_cycles: base.stats.cycles,
        hht_cycles: hht.stats.cycles,
        cpu_wait_frac: hht.stats.cpu_wait_frac(),
        hht_wait_frac: hht.stats.hht_wait_frac(),
    }
}

/// Figure 4/6 sweep: SpMV speedup and CPU-wait fraction vs sparsity for
/// N ∈ {1, 2} buffers on an `n x n` matrix.
pub fn spmv_sweep(cfg: &SystemConfig, n: usize) -> Vec<(usize, Vec<SpeedupPoint>)> {
    spmv_sweep_jobs(cfg, n, 1)
}

/// [`spmv_sweep`] with its 18 cells spread over up to `jobs` threads.
pub fn spmv_sweep_jobs(
    cfg: &SystemConfig,
    n: usize,
    jobs: usize,
) -> Vec<(usize, Vec<SpeedupPoint>)> {
    let buffers = [1usize, 2];
    let cells: Vec<(usize, f64)> =
        buffers.iter().flat_map(|&nb| PAPER_SPARSITIES.iter().map(move |&s| (nb, s))).collect();
    let flat = hht_exec::parallel_map(jobs, cells, |_, (nb, s)| spmv_point(cfg, n, s, nb));
    regroup(&buffers, PAPER_SPARSITIES.len(), flat)
}

/// Which SpMSpV variant to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpMSpVKind {
    /// Variant-1: aligned pairs.
    V1,
    /// Variant-2: value-or-zero.
    V2,
}

/// One SpMSpV measurement (Figs. 5/7): matrix and vector share `sparsity`.
pub fn spmspv_point(
    cfg: &SystemConfig,
    n: usize,
    sparsity: f64,
    num_buffers: usize,
    kind: SpMSpVKind,
) -> SpeedupPoint {
    let cfg_h = cfg.with_buffers(num_buffers);
    let seed = seed_for(2, n, sparsity);
    let m = generate::random_csr(n, n, sparsity, seed);
    let x = generate::random_sparse_vector(n, sparsity, seed ^ 1);
    let base = runner::run_spmspv_baseline(cfg, &m, &x);
    let hht = match kind {
        SpMSpVKind::V1 => runner::run_spmspv_hht_v1(&cfg_h, &m, &x),
        SpMSpVKind::V2 => runner::run_spmspv_hht_v2(&cfg_h, &m, &x),
    };
    SpeedupPoint {
        sparsity,
        baseline_cycles: base.stats.cycles,
        hht_cycles: hht.stats.cycles,
        cpu_wait_frac: hht.stats.cpu_wait_frac(),
        hht_wait_frac: hht.stats.hht_wait_frac(),
    }
}

/// Figure 5/7 sweep: all four bars (v1/v2 × 1/2 buffers) per sparsity.
pub fn spmspv_sweep(cfg: &SystemConfig, n: usize) -> Vec<(SpMSpVKind, usize, Vec<SpeedupPoint>)> {
    spmspv_sweep_jobs(cfg, n, 1)
}

/// [`spmspv_sweep`] with its 36 cells spread over up to `jobs` threads.
pub fn spmspv_sweep_jobs(
    cfg: &SystemConfig,
    n: usize,
    jobs: usize,
) -> Vec<(SpMSpVKind, usize, Vec<SpeedupPoint>)> {
    let series: Vec<(SpMSpVKind, usize)> = [SpMSpVKind::V1, SpMSpVKind::V2]
        .into_iter()
        .flat_map(|kind| [1usize, 2].into_iter().map(move |nb| (kind, nb)))
        .collect();
    let cells: Vec<(SpMSpVKind, usize, f64)> = series
        .iter()
        .flat_map(|&(kind, nb)| PAPER_SPARSITIES.iter().map(move |&s| (kind, nb, s)))
        .collect();
    let flat =
        hht_exec::parallel_map(jobs, cells, |_, (kind, nb, s)| spmspv_point(cfg, n, s, nb, kind));
    regroup(&series, PAPER_SPARSITIES.len(), flat)
        .into_iter()
        .map(|((kind, nb), points)| (kind, nb, points))
        .collect()
}

/// Figure 8 sweep: SpMV speedup vs sparsity for vector widths 1, 4, 8
/// (N = 2 buffers; the baseline at each width uses the same width).
pub fn vector_width_sweep(cfg: &SystemConfig, n: usize) -> Vec<(usize, Vec<SpeedupPoint>)> {
    vector_width_sweep_jobs(cfg, n, 1)
}

/// [`vector_width_sweep`] with its 27 cells spread over up to `jobs`
/// threads.
pub fn vector_width_sweep_jobs(
    cfg: &SystemConfig,
    n: usize,
    jobs: usize,
) -> Vec<(usize, Vec<SpeedupPoint>)> {
    let widths = [1usize, 4, 8];
    let cells: Vec<(usize, f64)> =
        widths.iter().flat_map(|&vl| PAPER_SPARSITIES.iter().map(move |&s| (vl, s))).collect();
    let flat =
        hht_exec::parallel_map(jobs, cells, |_, (vl, s)| spmv_point(&cfg.with_vlen(vl), n, s, 2));
    regroup(&widths, PAPER_SPARSITIES.len(), flat)
}

/// A named DNN fully-connected layer workload result (Fig. 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnResult {
    /// Network name.
    pub network: String,
    /// FC-layer matrix shape `(rows, cols)`.
    pub shape: (usize, usize),
    /// Weight sparsity used.
    pub sparsity: f64,
    /// Measurement.
    pub point: SpeedupPoint,
}

/// Figure 9: SpMV over DNN fully-connected layer weight matrices.
pub fn dnn_suite(cfg: &SystemConfig) -> Vec<DnnResult> {
    dnn_suite_jobs(cfg, 1)
}

/// [`dnn_suite`] with one cell per layer, spread over up to `jobs` threads.
pub fn dnn_suite_jobs(cfg: &SystemConfig, jobs: usize) -> Vec<DnnResult> {
    hht_exec::parallel_map(jobs, hht_workloads::dnn::suite(), |_, layer| {
        let m = layer.weights();
        let v = generate::random_dense_vector(m.cols(), 0xD00D ^ m.cols() as u64);
        let base = runner::run_spmv_baseline(cfg, &m, &v);
        let hht = runner::run_spmv_hht(cfg, &m, &v);
        use hht_sparse::SparseFormat;
        DnnResult {
            network: layer.network.clone(),
            shape: (m.rows(), m.cols()),
            sparsity: m.sparsity(),
            point: SpeedupPoint {
                sparsity: m.sparsity(),
                baseline_cycles: base.stats.cycles,
                hht_cycles: hht.stats.cycles,
                cpu_wait_frac: hht.stats.cpu_wait_frac(),
                hht_wait_frac: hht.stats.hht_wait_frac(),
            },
        }
    })
}

/// Baseline-choice ablation for SpMSpV (explains the Fig. 5 magnitude
/// sensitivity documented in EXPERIMENTS.md): the row-merge baseline the
/// evaluation uses vs the work-efficient CSC column-scatter baseline of
/// related work [43], against both HHT variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineAblationPoint {
    /// Shared matrix/vector sparsity.
    pub sparsity: f64,
    /// Row-merge baseline cycles.
    pub merge_cycles: u64,
    /// CSC column-scatter baseline cycles.
    pub csc_cycles: u64,
    /// HHT variant-1 cycles.
    pub v1_cycles: u64,
    /// HHT variant-2 cycles.
    pub v2_cycles: u64,
}

/// Run the SpMSpV baseline-choice ablation.
pub fn baseline_ablation(cfg: &SystemConfig, n: usize) -> Vec<BaselineAblationPoint> {
    baseline_ablation_jobs(cfg, n, 1)
}

/// [`baseline_ablation`] with one cell per sparsity, spread over up to
/// `jobs` threads.
pub fn baseline_ablation_jobs(
    cfg: &SystemConfig,
    n: usize,
    jobs: usize,
) -> Vec<BaselineAblationPoint> {
    hht_exec::parallel_map(jobs, PAPER_SPARSITIES.to_vec(), |_, s| {
        let seed = seed_for(7, n, s);
        let m = generate::random_csr(n, n, s, seed);
        let x = generate::random_sparse_vector(n, s, seed ^ 1);
        BaselineAblationPoint {
            sparsity: s,
            merge_cycles: runner::run_spmspv_baseline(cfg, &m, &x).stats.cycles,
            csc_cycles: runner::run_spmspv_csc_baseline(cfg, &m, &x).stats.cycles,
            v1_cycles: runner::run_spmspv_hht_v1(cfg, &m, &x).stats.cycles,
            v2_cycles: runner::run_spmspv_hht_v2(cfg, &m, &x).stats.cycles,
        }
    })
}

/// Dense-expansion crossover point (§6's discussion of [40]/[23]): cycles
/// for the dense (expanded) kernel vs sparse baseline vs sparse+HHT on the
/// same logical matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossoverPoint {
    /// Matrix sparsity.
    pub sparsity: f64,
    /// Dense (expanded) matvec cycles — sparsity-independent.
    pub dense_cycles: u64,
    /// Sparse CSR baseline cycles.
    pub sparse_baseline_cycles: u64,
    /// Sparse CSR + HHT cycles.
    pub sparse_hht_cycles: u64,
}

/// Sweep the dense-vs-sparse crossover.
pub fn crossover(cfg: &SystemConfig, n: usize) -> Vec<CrossoverPoint> {
    crossover_jobs(cfg, n, 1)
}

/// [`crossover`] with one cell per sparsity, spread over up to `jobs`
/// threads.
pub fn crossover_jobs(cfg: &SystemConfig, n: usize, jobs: usize) -> Vec<CrossoverPoint> {
    use hht_sparse::SparseFormat;
    hht_exec::parallel_map(jobs, PAPER_SPARSITIES.to_vec(), |_, s| {
        let seed = seed_for(6, n, s);
        let m = generate::random_csr(n, n, s, seed);
        let v = generate::random_dense_vector(n, seed ^ 1);
        let dense = runner::run_dense_matvec(cfg, &m.to_dense(), &v);
        let base = runner::run_spmv_baseline(cfg, &m, &v);
        let hht = runner::run_spmv_hht(cfg, &m, &v);
        CrossoverPoint {
            sparsity: s,
            dense_cycles: dense.stats.cycles,
            sparse_baseline_cycles: base.stats.cycles,
            sparse_hht_cycles: hht.stats.cycles,
        }
    })
}

/// The §2 motivation measurement: where do the baseline's loads and
/// instructions go? Compares Algorithm 1's metadata/indirect traffic
/// against its useful value traffic, from both static accounting and the
/// simulator's measured counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotivationPoint {
    /// Matrix sparsity.
    pub sparsity: f64,
    /// Static metadata-load fraction of Algorithm 1 (row-ptr + cols +
    /// indirect over all loads).
    pub metadata_load_fraction: f64,
    /// Measured baseline instructions per non-zero element.
    pub baseline_instr_per_nnz: f64,
    /// Measured HHT-kernel instructions per non-zero element (the CPU-side
    /// count shrinks because index work moved to the HHT).
    pub hht_instr_per_nnz: f64,
    /// Measured baseline memory beats per non-zero.
    pub baseline_beats_per_nnz: f64,
    /// Measured HHT-kernel CPU memory beats per non-zero.
    pub hht_beats_per_nnz: f64,
}

/// Run the §2 motivation study across the paper sparsities.
pub fn motivation(cfg: &SystemConfig, n: usize) -> Vec<MotivationPoint> {
    motivation_jobs(cfg, n, 1)
}

/// [`motivation`] with one cell per sparsity, spread over up to `jobs`
/// threads.
pub fn motivation_jobs(cfg: &SystemConfig, n: usize, jobs: usize) -> Vec<MotivationPoint> {
    use hht_sparse::kernels::spmv_access_counts;
    use hht_sparse::SparseFormat;
    hht_exec::parallel_map(jobs, PAPER_SPARSITIES.to_vec(), |_, s| {
        let seed = seed_for(5, n, s);
        let m = generate::random_csr(n, n, s, seed);
        let v = generate::random_dense_vector(n, seed ^ 1);
        let nnz = m.nnz().max(1) as f64;
        let base = runner::run_spmv_baseline(cfg, &m, &v);
        let hht = runner::run_spmv_hht(cfg, &m, &v);
        MotivationPoint {
            sparsity: s,
            metadata_load_fraction: spmv_access_counts(&m).metadata_fraction(),
            baseline_instr_per_nnz: base.stats.core.instructions as f64 / nnz,
            hht_instr_per_nnz: hht.stats.core.instructions as f64 / nnz,
            baseline_beats_per_nnz: base.stats.core.mem_beats as f64 / nnz,
            hht_beats_per_nnz: hht.stats.core.mem_beats as f64 / nnz,
        }
    })
}

/// ASIC vs programmable back-end (§7) comparison at one parameter point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgrammablePoint {
    /// Matrix sparsity.
    pub sparsity: f64,
    /// Baseline (CPU-only) cycles.
    pub baseline_cycles: u64,
    /// Cycles with the ASIC gather FSM.
    pub asic_cycles: u64,
    /// Cycles with the programmable (helper-core) back-end.
    pub programmable_cycles: u64,
    /// CPU wait fraction under the programmable back-end.
    pub programmable_cpu_wait: f64,
}

impl ProgrammablePoint {
    /// Speedup of the ASIC HHT over the baseline.
    pub fn asic_speedup(&self) -> f64 {
        self.baseline_cycles as f64 / self.asic_cycles.max(1) as f64
    }
    /// Speedup of the programmable HHT over the baseline.
    pub fn programmable_speedup(&self) -> f64 {
        self.baseline_cycles as f64 / self.programmable_cycles.max(1) as f64
    }
}

/// Run the §7 ASIC-vs-programmable ablation across the paper sparsities.
pub fn programmable_ablation(cfg: &SystemConfig, n: usize) -> Vec<ProgrammablePoint> {
    programmable_ablation_jobs(cfg, n, 1)
}

/// [`programmable_ablation`] with one cell per sparsity, spread over up to
/// `jobs` threads.
pub fn programmable_ablation_jobs(
    cfg: &SystemConfig,
    n: usize,
    jobs: usize,
) -> Vec<ProgrammablePoint> {
    hht_exec::parallel_map(jobs, PAPER_SPARSITIES.to_vec(), |_, s| {
        let seed = seed_for(4, n, s);
        let m = generate::random_csr(n, n, s, seed);
        let v = generate::random_dense_vector(n, seed ^ 1);
        let base = runner::run_spmv_baseline(cfg, &m, &v);
        let asic = runner::run_spmv_hht(cfg, &m, &v);
        let prog = runner::run_spmv_hht_programmable(cfg, &m, &v);
        ProgrammablePoint {
            sparsity: s,
            baseline_cycles: base.stats.cycles,
            asic_cycles: asic.stats.cycles,
            programmable_cycles: prog.stats.cycles,
            programmable_cpu_wait: prog.stats.cpu_wait_frac(),
        }
    })
}

/// SMASH-format ablation (§6): CSR-HHT vs SMASH-HHT on the same matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FormatAblationPoint {
    /// Matrix sparsity.
    pub sparsity: f64,
    /// Cycles with the CSR gather engine.
    pub csr_hht_cycles: u64,
    /// Cycles with the SMASH bitmap engine.
    pub smash_hht_cycles: u64,
    /// CPU wait fraction under SMASH (expected high, §6: "HHT is
    /// performing more work than the CPU, causing CPU to idle").
    pub smash_cpu_wait_frac: f64,
    /// CPU wait fraction under CSR.
    pub csr_cpu_wait_frac: f64,
}

/// Sparsity levels for the format ablation: the paper sweep plus the very
/// high sparsities where the bitmap scan dominates and the CPU idles (§6).
pub const FORMAT_ABLATION_SPARSITIES: [f64; 11] =
    [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99];

/// Run the §6 format ablation on an `n x n` matrix per sparsity level.
pub fn format_ablation(cfg: &SystemConfig, n: usize) -> Vec<FormatAblationPoint> {
    format_ablation_jobs(cfg, n, 1)
}

/// [`format_ablation`] with one cell per sparsity, spread over up to
/// `jobs` threads.
pub fn format_ablation_jobs(cfg: &SystemConfig, n: usize, jobs: usize) -> Vec<FormatAblationPoint> {
    use hht_sparse::{SmashMatrix, SparseFormat};
    hht_exec::parallel_map(jobs, FORMAT_ABLATION_SPARSITIES.to_vec(), |_, s| {
        let seed = seed_for(3, n, s);
        let m = generate::random_csr(n, n, s, seed);
        let v = generate::random_dense_vector(n, seed ^ 1);
        let smash =
            SmashMatrix::from_triplets(n, n, &m.triplets()).expect("valid triplets from CSR");
        let csr_run = runner::run_spmv_hht(cfg, &m, &v);
        let smash_run = runner::run_smash_spmv_hht(cfg, &smash, &v);
        FormatAblationPoint {
            sparsity: s,
            csr_hht_cycles: csr_run.stats.cycles,
            smash_hht_cycles: smash_run.stats.cycles,
            smash_cpu_wait_frac: smash_run.stats.cpu_wait_frac(),
            csr_cpu_wait_frac: csr_run.stats.cpu_wait_frac(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SystemConfig {
        SystemConfig::paper_default()
    }

    #[test]
    fn spmv_point_speedup_above_one() {
        let p = spmv_point(&small_cfg(), 64, 0.5, 2);
        assert!(p.speedup() > 1.0, "speedup = {}", p.speedup());
        assert!(p.cpu_wait_frac >= 0.0 && p.cpu_wait_frac <= 1.0);
    }

    #[test]
    fn two_buffers_not_slower_than_one() {
        let p1 = spmv_point(&small_cfg(), 64, 0.5, 1);
        let p2 = spmv_point(&small_cfg(), 64, 0.5, 2);
        assert!(p2.hht_cycles <= p1.hht_cycles + p1.hht_cycles / 10);
    }

    #[test]
    fn spmspv_points_run() {
        let v1 = spmspv_point(&small_cfg(), 48, 0.8, 2, SpMSpVKind::V1);
        let v2 = spmspv_point(&small_cfg(), 48, 0.8, 2, SpMSpVKind::V2);
        assert!(v1.speedup() > 1.0, "v1 speedup = {}", v1.speedup());
        assert!(v2.speedup() > 1.0, "v2 speedup = {}", v2.speedup());
    }

    #[test]
    fn points_are_reproducible() {
        let a = spmv_point(&small_cfg(), 32, 0.5, 2);
        let b = spmv_point(&small_cfg(), 32, 0.5, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn format_ablation_smash_is_slower() {
        let pts = format_ablation(&small_cfg(), 64);
        // §6: SMASH indexing makes the HHT the bottleneck.
        let p = &pts[4]; // 50% sparsity
        assert!(p.smash_hht_cycles > p.csr_hht_cycles);
        assert!(p.smash_cpu_wait_frac >= p.csr_cpu_wait_frac);
    }
}
