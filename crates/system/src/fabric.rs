//! The N-tile HHT fabric: `N` CPU+HHT tiles over one banked shared memory.
//!
//! This is the scale-out of the paper's single-core MCU (§7 "the proposed
//! architecture can be extended with multiple HHTs"): each [`Tile`] is one
//! core plus one accelerator, all tiles share a [`SharedMemory`] whose
//! banks arbitrate per cycle, and one [`Fabric`] run advances every tile
//! under the same event-driven cycle-skipping scheduler the single-tile
//! system uses.
//!
//! Design rules inherited from the single-tile machine and preserved here:
//!
//! - **Call order is arbitration.** Within a cycle every live tile's CPU
//!   steps first (in arbiter order), then every live tile's HHT. A
//!   [`ArbPolicy::FixedPriority`] arbiter always starts at tile 0 (exactly
//!   the legacy order); [`ArbPolicy::RoundRobin`] rotates the starting
//!   tile each cycle so no tile persistently wins bank conflicts.
//! - **Skipping is replay, not estimation.** A span is skipped only when
//!   *every* live tile is provably inert over it, and the span's per-cycle
//!   charges (stall counters, arbitration losses, conflict events) are
//!   replayed in bulk through the same hooks the single-tile scheduler
//!   uses. Cycle counts, statistics and event streams are bit-identical to
//!   the per-cycle loop; with one tile and one bank they are bit-identical
//!   to [`LegacySystem`](crate::legacy::LegacySystem) (proved in
//!   `tests/determinism.rs`).
//! - **Skips are bank-exact.** Both CPU port waits
//!   ([`hht_sim::Core::pending_port_addr`]) and engine port waits
//!   (`Wake::NeedsPort { addr }`) carry the address they are retrying, so
//!   the scheduler bounds each wait by the exact bank's free cycle — a
//!   busy bank's `free_at` cannot move while no tile steps, because only
//!   a grant (which requires the bank to be free) reprograms it.
//! - **Parking is per-tile under the event queue.** With
//!   [`SystemConfig::event_queue`] on (the default), a min-heap of
//!   `(wake, tile)` entries advances each tile independently to its own
//!   next wake instead of the lock-step outer loop, so one busy tile no
//!   longer forces per-cycle host work for every parked neighbour. The
//!   lock-step scheduler stays available (`with_event_queue(false)`) as
//!   the differential oracle; both are bit-identical in everything
//!   simulated (see `Fabric::run_event_queue` for the argument).
//! - **Frozen tiles stay frozen.** A tile whose core halted is never
//!   stepped again (its HHT included), mirroring the single-tile run loop
//!   which exits outright — so per-tile statistics read exactly as if the
//!   tile had run alone until its own completion cycle.

use crate::config::SystemConfig;
use crate::system::{FaultSummary, SystemStats};
use hht_accel::{Hht, HhtStats, Wake};
use hht_fault::{FaultKind, FaultPlan};
use hht_isa::Program;
use hht_mem::{Dram, FabricMemory, FabricPort, SharedMemStats, SharedMemory, SramStats};
use hht_obs::{
    merge_events, Event, EventBus, EventKind, ObsDrops, SkipSpan, StallBreakdown, Track,
};
use hht_sim::{Core, CoreStats, RunError};
use hht_sparse::DenseVector;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// How the per-cycle stepping order — and therefore bank arbitration —
/// rotates across tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbPolicy {
    /// Tile 0 always steps first: the lowest-numbered contender wins a
    /// contended bank. With one tile this is exactly the legacy order.
    FixedPriority,
    /// The starting tile rotates each cycle (`cycle % tiles`), giving every
    /// tile an equal share of first pick over time.
    RoundRobin,
}

/// Shape of the fabric: tile count, bank count, arbitration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Number of CPU+HHT tiles.
    pub tiles: usize,
    /// Number of shared-memory banks.
    pub banks: usize,
    /// Cross-tile arbitration policy.
    pub arb: ArbPolicy,
}

impl FabricConfig {
    /// One tile over one bank — the configuration whose observable
    /// behaviour is bit-identical to the legacy single-tile system.
    pub fn single() -> Self {
        FabricConfig { tiles: 1, banks: 1, arb: ArbPolicy::FixedPriority }
    }

    /// `n` tiles over a fixed 8-bank memory with round-robin arbitration —
    /// the scaling-experiment shape (a constant bank count keeps conflict
    /// fractions comparable across the sweep).
    pub fn scaled(n: usize) -> Self {
        FabricConfig { tiles: n, banks: 8, arb: ArbPolicy::RoundRobin }
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self::single()
    }
}

/// Host-side scheduler accounting: how the run's simulated cycles were
/// advanced. Deliberately *not* part of [`FabricStats`] — the split between
/// stepped and skipped cycles depends on the scheduler mode, while
/// [`FabricStats`] must stay bit-identical between the per-cycle and
/// cycle-skipping schedulers (the determinism tests compare it directly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStats {
    /// Simulated cycles advanced by stepping every component.
    pub stepped_cycles: u64,
    /// Simulated cycles advanced by bulk replay (fast-forward spans).
    pub skipped_cycles: u64,
    /// Number of fast-forward spans taken.
    pub skip_spans: u64,
}

impl SchedStats {
    /// Fraction of simulated cycles the scheduler fast-forwarded over
    /// (0.0 under the per-cycle scheduler, approaches 1.0 when the machine
    /// spends most of its time provably inert).
    pub fn skip_efficiency(&self) -> f64 {
        let total = self.stepped_cycles + self.skipped_cycles;
        if total == 0 {
            return 0.0;
        }
        self.skipped_cycles as f64 / total as f64
    }

    /// Fold another run's scheduler counters into this one.
    pub fn add(&mut self, other: &SchedStats) {
        let SchedStats { stepped_cycles, skipped_cycles, skip_spans } = *other;
        self.stepped_cycles += stepped_cycles;
        self.skipped_cycles += skipped_cycles;
        self.skip_spans += skip_spans;
    }
}

/// Host-side per-tile scheduler accounting. Like [`SchedStats`], this is
/// deliberately *not* part of [`FabricStats`]: the split depends on the
/// scheduler mode, while simulated statistics are mode-invariant.
///
/// Under the event-queue scheduler `stepped_cycles + skipped_cycles` is the
/// tile's own active life (from cycle 0 to its halt); under the lock-step
/// scheduler `skipped_cycles` counts the global fast-forward spans the tile
/// lived through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileSchedStats {
    /// Times this tile was popped from the event queue (0 under the
    /// lock-step scheduler, which has no queue).
    pub pops: u64,
    /// Cycles this tile was genuinely stepped.
    pub stepped_cycles: u64,
    /// Cycles this tile sat parked (advanced by bulk replay).
    pub skipped_cycles: u64,
    /// Number of parked spans (fast-forward spans under lock-step).
    pub parks: u64,
}

impl TileSchedStats {
    /// Mean parked-span length in cycles (0 when the tile never parked).
    pub fn mean_park(&self) -> f64 {
        if self.parks == 0 {
            return 0.0;
        }
        self.skipped_cycles as f64 / self.parks as f64
    }

    /// Fraction of the tile's active cycles it spent parked rather than
    /// stepped — the per-tile skip efficiency.
    pub fn parked_frac(&self) -> f64 {
        let total = self.stepped_cycles + self.skipped_cycles;
        if total == 0 {
            return 0.0;
        }
        self.skipped_cycles as f64 / total as f64
    }
}

/// One CPU + HHT pair of the fabric. The tile owns no memory: all its
/// traffic goes through its [`TilePort`] view of the shared banks.
struct Tile {
    core: Core,
    hht: Hht,
    /// The tile's own event sink (fault-injection timeline).
    obs: Option<Box<EventBus>>,
    faults_injected: u64,
    /// Tile-targeted plan events dropped because this tile had already
    /// halted when they came due.
    faults_dropped: u64,
    /// A fatal ([`FaultKind::is_fatal`]) fault landed here: no retry can
    /// revive this tile, the recovery policy must quarantine it.
    fatal: bool,
    /// Cycle count at which this tile's core halted (its private notion of
    /// "my run took this long"); `None` while still running.
    done_at: Option<u64>,
}

/// Per-tile failure record of one fabric run: every tile that ended the
/// run in an error state (guest fault, HHT declared failed, or still
/// un-halted at watchdog expiry), in tile order, so the caller can fail
/// over exactly the shards whose fault domains died. [`Fabric::stats`]
/// remains readable after the error for per-tile accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricError {
    /// `(tile, error)` for every failed tile; never empty.
    pub tiles: Vec<(usize, RunError)>,
}

impl FabricError {
    /// The first failed tile's error — the single-tile system's view.
    pub fn first(&self) -> RunError {
        self.tiles[0].1
    }

    /// True when tile `t` is one of the failed tiles.
    pub fn contains(&self, t: usize) -> bool {
        self.tiles.iter().any(|&(ft, _)| ft == t)
    }
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (t, e)) in self.tiles.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "tile {t}: {e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for FabricError {}

/// One tile's position in the recovery policy's health state machine:
/// healthy → suspected (bounded exponential-backoff retries) →
/// quarantined (its row shard fails over to the surviving tiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileHealth {
    /// No failed attempt so far.
    Healthy,
    /// Failed `retries` attempts; still eligible for retry after backoff.
    Suspected {
        /// Failed attempts so far (≥ 1).
        retries: u32,
    },
    /// Dead for the rest of the run: a fatal fault landed, or the retry
    /// budget ran out. Its unfinished rows belong to the survivors now.
    Quarantined,
}

impl TileHealth {
    /// True once the tile has been written off for the rest of the run.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, TileHealth::Quarantined)
    }
}

/// Everything measured in one fabric run: per-tile statistics (each tile's
/// [`SystemStats`] reads exactly as if the tile had run alone until its own
/// completion cycle) plus the shared-memory aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricStats {
    /// Wall cycles: the cycle at which the *last* tile finished.
    pub cycles: u64,
    /// Per-tile statistics. `tiles[t].cycles` is tile `t`'s own completion
    /// cycle (≤ `cycles`).
    pub tiles: Vec<SystemStats>,
    /// Shared-memory aggregates, including cross-tile bank conflicts.
    pub mem: SharedMemStats,
}

fn add_stalls(acc: &mut StallBreakdown, s: &StallBreakdown) {
    // Exhaustive destructuring: adding a field to the struct breaks this
    // merge at compile time instead of silently dropping the new counter.
    let StallBreakdown {
        load_latency,
        vector_busy,
        hht_window_empty,
        hht_header_wait,
        arbitration_loss,
        branch_refill,
        output_full,
        hht_retry_backoff,
    } = *s;
    acc.load_latency += load_latency;
    acc.vector_busy += vector_busy;
    acc.hht_window_empty += hht_window_empty;
    acc.hht_header_wait += hht_header_wait;
    acc.arbitration_loss += arbitration_loss;
    acc.branch_refill += branch_refill;
    acc.output_full += output_full;
    acc.hht_retry_backoff += hht_retry_backoff;
}

fn add_core(acc: &mut CoreStats, s: &CoreStats) {
    let CoreStats {
        instructions,
        loads,
        stores,
        vector_instrs,
        mem_port_stall_cycles,
        hht_wait_cycles,
        mem_beats,
        l1d_hits,
        l1d_misses,
        hht_timeouts,
        hht_retries,
        stalls,
    } = *s;
    acc.instructions += instructions;
    acc.loads += loads;
    acc.stores += stores;
    acc.vector_instrs += vector_instrs;
    acc.mem_port_stall_cycles += mem_port_stall_cycles;
    acc.hht_wait_cycles += hht_wait_cycles;
    acc.mem_beats += mem_beats;
    acc.l1d_hits += l1d_hits;
    acc.l1d_misses += l1d_misses;
    acc.hht_timeouts += hht_timeouts;
    acc.hht_retries += hht_retries;
    add_stalls(&mut acc.stalls, &stalls);
}

fn add_hht(acc: &mut HhtStats, s: &HhtStats) {
    let HhtStats {
        cpu_stall_reads,
        elements_delivered,
        engine,
        busy_cycles,
        parity_errors,
        decode_errors,
    } = *s;
    acc.cpu_stall_reads += cpu_stall_reads;
    acc.elements_delivered += elements_delivered;
    acc.engine.mem_reads += engine.mem_reads;
    acc.engine.port_conflicts += engine.port_conflicts;
    acc.engine.stall_out_full += engine.stall_out_full;
    acc.engine.internal_cycles += engine.internal_cycles;
    acc.busy_cycles += busy_cycles;
    acc.parity_errors += parity_errors;
    acc.decode_errors += decode_errors;
}

fn add_sram(acc: &mut SramStats, s: &SramStats) {
    let SramStats {
        cpu_accesses,
        hht_accesses,
        conflicts,
        cpu_conflicts,
        cpu_cross_tile_conflicts,
        cpu_row_hit_extra,
        cpu_row_miss_extra,
        cpu_window_stalls,
        hht_window_stalls,
    } = *s;
    acc.cpu_accesses += cpu_accesses;
    acc.hht_accesses += hht_accesses;
    acc.conflicts += conflicts;
    acc.cpu_conflicts += cpu_conflicts;
    acc.cpu_cross_tile_conflicts += cpu_cross_tile_conflicts;
    acc.cpu_row_hit_extra += cpu_row_hit_extra;
    acc.cpu_row_miss_extra += cpu_row_miss_extra;
    acc.cpu_window_stalls += cpu_window_stalls;
    acc.hht_window_stalls += hht_window_stalls;
}

fn add_faults(acc: &mut FaultSummary, s: &FaultSummary) {
    let FaultSummary { injected, dropped, fallbacks, failovers, failed_cycles } = *s;
    acc.injected += injected;
    acc.dropped += dropped;
    acc.fallbacks += fallbacks;
    acc.failovers += failovers;
    acc.failed_cycles += failed_cycles;
}

impl SystemStats {
    /// Fold another attempt's per-tile record into this one (every counter
    /// summed, via the same exhaustive-destructure helpers the fabric
    /// merge uses). The recovery policy uses this to accumulate one tile's
    /// statistics across failover attempts.
    pub fn absorb(&mut self, other: &SystemStats) {
        self.cycles += other.cycles;
        add_core(&mut self.core, &other.core);
        add_hht(&mut self.hht, &other.hht);
        add_sram(&mut self.sram, &other.sram);
        add_faults(&mut self.faults, &other.faults);
    }
}

impl FabricStats {
    /// Fold every tile into one [`SystemStats`]. The merged `cycles` is the
    /// *sum* of per-tile completion cycles (total tile-time, not wall
    /// time), so every `frac` derived from it — and the exact-sum
    /// invariants [`crate::metrics::MetricsSnapshot::validate`] checks —
    /// hold for the merged record exactly as they do per tile. With one
    /// tile the merge is the tile.
    pub fn merged(&self) -> SystemStats {
        let mut acc = SystemStats {
            cycles: 0,
            core: CoreStats::default(),
            hht: HhtStats::default(),
            sram: SramStats::default(),
            faults: FaultSummary::default(),
        };
        for t in &self.tiles {
            acc.cycles += t.cycles;
            add_core(&mut acc.core, &t.core);
            add_hht(&mut acc.hht, &t.hht);
            add_sram(&mut acc.sram, &t.sram);
            add_faults(&mut acc.faults, &t.faults);
        }
        acc
    }

    /// Fraction of total tile-time the CPUs idled waiting for their HHTs
    /// (the fabric generalization of Figs. 6/7; in [0, 1] by construction).
    pub fn cpu_wait_frac(&self) -> f64 {
        self.merged().cpu_wait_frac()
    }

    /// Fraction of total tile-time the HHT back-ends were throttled by
    /// full output buffers (in [0, 1] by construction).
    pub fn hht_wait_frac(&self) -> f64 {
        self.merged().hht_wait_frac()
    }

    /// Fraction of shared-memory port attempts that lost bank arbitration.
    pub fn bank_conflict_frac(&self) -> f64 {
        self.mem.conflict_frac()
    }
}

/// `N` tiles over one banked shared memory, advanced by either the
/// lock-step scheduler (the differential oracle) or the discrete-event
/// scheduler (see [`SystemConfig::event_queue`]).
pub struct Fabric {
    tiles: Vec<Tile>,
    mem: FabricMemory,
    arb: ArbPolicy,
    cycle: u64,
    max_cycles: u64,
    cycle_skip: bool,
    /// Discrete-event scheduling active (`cfg.event_queue && cfg.cycle_skip`
    /// — the queue *is* per-tile cycle skipping, so turning skipping off
    /// selects the pure per-cycle loop).
    event_queue: bool,
    /// Pending fault schedule; the next pending cycle bounds every
    /// fast-forward so no injection point is skipped over.
    fault_plan: Option<FaultPlan>,
    /// Host-side scheduler accounting (stepped vs skipped cycles).
    sched: SchedStats,
    /// Host-side per-tile scheduler accounting (queue pops, parked spans).
    tile_sched: Vec<TileSchedStats>,
    /// Fast-forward spans, recorded only when event tracing is on (the
    /// Chrome exporter renders them as a per-tile scheduler lane). Kept
    /// off the per-tile buses so event streams stay bit-identical between
    /// scheduler modes.
    skip_spans: Option<Vec<SkipSpan>>,
    /// Per-tile parked spans, recorded only when event tracing is on (the
    /// park-soundness property test replays each span against a per-cycle
    /// oracle). Also kept off the per-tile buses.
    park_spans: Option<Vec<Vec<SkipSpan>>>,
}

/// Per-tile classification for one fast-forward attempt: what bulk-replay
/// the skipped span owes this tile.
enum Replay {
    /// Core halted: the tile is frozen, nothing to replay.
    Frozen,
    /// Core busy (or the engine merely idle): only `skip_idle` applies.
    Busy,
    /// Core parked on an empty stream window at this address.
    Window(u32),
    /// Core losing bank arbitration for this address.
    Port,
}

impl Fabric {
    /// Build the fabric: one program per tile over an already-loaded shared
    /// memory (`mem.tiles()` must equal `fab.tiles`). When `cfg.trace`
    /// asks for it, per-tile event buses are installed on every core, HHT
    /// and memory-port view.
    pub fn new(
        cfg: &SystemConfig,
        fab: FabricConfig,
        programs: Vec<Program>,
        mut mem: SharedMemory,
    ) -> Self {
        assert_eq!(programs.len(), fab.tiles, "one program per tile");
        assert_eq!(mem.tiles(), fab.tiles, "memory accounting domains must match tiles");
        assert_eq!(mem.banks(), fab.banks, "memory bank count must match the fabric config");
        let mut tiles = Vec::with_capacity(fab.tiles);
        for (t, program) in programs.into_iter().enumerate() {
            let mut core = Core::new(cfg.core, program);
            let mut hht = Hht::new(cfg.hht);
            let mut obs = None;
            if cfg.trace.events {
                let bus =
                    || EventBus::with_sampling(cfg.trace.event_capacity, cfg.trace.sample_every);
                core.set_event_bus(bus());
                hht.set_event_bus(bus());
                mem.set_event_bus_for(t, bus());
                obs = Some(Box::new(bus()));
            }
            if cfg.trace.instr_trace {
                core.enable_trace_with_capacity(cfg.trace.instr_trace_capacity);
            }
            tiles.push(Tile {
                core,
                hht,
                obs,
                faults_injected: 0,
                faults_dropped: 0,
                fatal: false,
                done_at: None,
            });
        }
        let plan = FaultPlan::from_seed(cfg.fault, mem.size());
        // Wrap the memory per the configured timing model. A flat DRAM
        // config is bit-identical to the bare banked memory (pinned in
        // `tests/determinism.rs`), so differential tests toggle only this.
        let mem = match cfg.dram {
            Some(dc) => FabricMemory::Dram(Dram::new(mem, dc)),
            None => FabricMemory::Shared(mem),
        };
        Fabric {
            tiles,
            mem,
            arb: fab.arb,
            cycle: 0,
            max_cycles: cfg.core.max_cycles,
            cycle_skip: cfg.cycle_skip,
            event_queue: cfg.event_queue && cfg.cycle_skip,
            fault_plan: (!plan.is_empty()).then_some(plan),
            sched: SchedStats::default(),
            tile_sched: vec![TileSchedStats::default(); fab.tiles],
            skip_spans: cfg.trace.events.then(Vec::new),
            park_spans: cfg.trace.events.then(|| vec![Vec::new(); fab.tiles]),
        }
    }

    /// Reset this warm fabric in place for a new job, returning the
    /// retired memory buffer for recycling into the next image build.
    ///
    /// Implemented as a full rebuild through [`Fabric::new`] — cores,
    /// HHTs, event buses, fault plan and scheduler state are all freshly
    /// constructed — so a reused fabric is **bit-identical to a cold one
    /// by construction**; no per-field reset code can drift out of sync
    /// with what `new` initializes. What the warm pool actually amortizes
    /// is the multi-megabyte memory allocation handed back here (the
    /// serving layer builds the next image into it), plus everything the
    /// layout cache skips upstream. The determinism suite pins the
    /// bit-identity end to end anyway.
    pub fn reset_for(
        &mut self,
        cfg: &SystemConfig,
        fab: FabricConfig,
        programs: Vec<Program>,
        mem: SharedMemory,
    ) -> Vec<u8> {
        let retired = std::mem::replace(self, Fabric::new(cfg, fab, programs, mem));
        retired.mem.into_data()
    }

    /// Install an explicit fault schedule (replacing any seed-derived one).
    /// Events carry the tile they target.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = (!plan.is_empty()).then_some(plan);
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Stepping order for this cycle: fixed priority always starts at tile
    /// 0, round-robin rotates the start each cycle.
    fn arb_start(&self) -> usize {
        match self.arb {
            ArbPolicy::FixedPriority => 0,
            ArbPolicy::RoundRobin => (self.cycle % self.tiles.len() as u64) as usize,
        }
    }

    /// Advance one cycle: every live tile's CPU first (in arbiter order,
    /// so call order *is* bank priority), then every live tile's HHT.
    pub fn step(&mut self) {
        let n = self.tiles.len();
        let start = self.arb_start();
        // Snapshot liveness before stepping: a core that halts mid-cycle
        // still gets its HHT stepped this cycle (exactly the single-tile
        // loop, where `step` runs the HHT after the core halts and the
        // `while` only exits afterwards).
        let active: Vec<bool> = self.tiles.iter().map(|t| !t.core.halted()).collect();
        for i in 0..n {
            let t = (start + i) % n;
            if !active[t] {
                continue;
            }
            let tile = &mut self.tiles[t];
            let mut port = FabricPort::new(&mut self.mem, t);
            tile.core.step(self.cycle, &mut port, &mut tile.hht);
        }
        for i in 0..n {
            let t = (start + i) % n;
            if !active[t] {
                continue;
            }
            let tile = &mut self.tiles[t];
            let mut port = FabricPort::new(&mut self.mem, t);
            tile.hht.step(self.cycle, &mut port);
        }
        self.cycle += 1;
        self.sched.stepped_cycles += 1;
        for (t, live) in active.iter().enumerate() {
            if *live {
                self.tile_sched[t].stepped_cycles += 1;
            }
        }
        for tile in &mut self.tiles {
            if tile.done_at.is_none() && tile.core.halted() {
                tile.done_at = Some(self.cycle);
            }
        }
    }

    /// Apply every fault-plan event due at or before the current cycle,
    /// routed to the tile each event targets. A tile-targeted event whose
    /// tile has already halted is *dropped* (counted per tile), not
    /// applied: a frozen tile can neither apply nor observe the fault, and
    /// treating it as live would let a dead event bound park spans (the
    /// per-tile mirror of the wall-clock bug the global scheduler fixed).
    /// Both schedulers take the same cumulative due set and halts are
    /// permanent, so the drop decision is scheduler-invariant.
    fn inject_due_faults(&mut self) {
        let Some(plan) = self.fault_plan.as_mut() else {
            return;
        };
        let now = self.cycle;
        let due: Vec<(FaultKind, u32)> =
            plan.take_due(now).iter().map(|e| (e.kind, e.tile)).collect();
        if plan.remaining() == 0 {
            self.fault_plan = None;
        }
        for (kind, tile) in due {
            let t = tile as usize;
            if !matches!(kind, FaultKind::SramBitFlip { .. })
                && t < self.tiles.len()
                && self.tiles[t].core.halted()
            {
                self.tiles[t].faults_dropped += 1;
                continue;
            }
            self.apply_fault(now, kind, t);
        }
    }

    /// Cycle of the next pending fault that can still *do* something: the
    /// scheduler's fault wake bound. Tile-targeted events aimed at a
    /// halted (or nonexistent) tile are inert — they will be dropped at
    /// injection time — so they must not bound park spans. Memory faults
    /// always count: the shared array outlives every tile.
    fn next_live_fault_cycle(&self) -> Option<u64> {
        let plan = self.fault_plan.as_ref()?;
        plan.pending()
            .iter()
            .find(|e| match e.kind {
                FaultKind::SramBitFlip { .. } => true,
                _ => {
                    let t = e.tile as usize;
                    t < self.tiles.len() && !self.tiles[t].core.halted()
                }
            })
            .map(|e| e.cycle)
    }

    /// Inject one fault into tile `t` (memory faults hit the shared array;
    /// `t` only selects whose timeline logs the injection). Events aimed at
    /// a tile the fabric does not have are dropped unapplied.
    fn apply_fault(&mut self, now: u64, kind: FaultKind, t: usize) {
        if t >= self.tiles.len() {
            return;
        }
        let tile = &mut self.tiles[t];
        let applied = match kind {
            FaultKind::SramBitFlip { addr, bit } => self.mem.corrupt_word(addr, bit),
            FaultKind::DropResponse => tile.hht.drop_response(),
            FaultKind::DelayResponse { cycles } => {
                tile.hht.delay_responses(now, cycles);
                true
            }
            FaultKind::EngineStall { cycles } => {
                tile.hht.freeze_engine(now, cycles);
                true
            }
            FaultKind::BufferCorrupt { bit } => tile.hht.corrupt_buffer(now, bit),
            FaultKind::MmrStickyError => {
                tile.hht.set_sticky_error();
                true
            }
            FaultKind::TileKill => {
                // The tile is dead: its HHT latches the sticky error (so
                // the core's timeout protocol detects the loss) and the
                // fatal mark tells the recovery policy to quarantine it
                // outright instead of burning retries.
                tile.hht.set_sticky_error();
                tile.fatal = true;
                true
            }
        };
        if applied {
            tile.faults_injected += 1;
            if let Some(obs) = tile.obs.as_mut() {
                obs.emit(now, Track::Fault, EventKind::FaultInject { what: kind.label() });
            }
        }
    }

    /// Run until every tile's core halts (or the watchdog expires). The
    /// error names *every* failed fault domain: tiles whose guest faulted
    /// or whose HHT was declared failed carry their own [`RunError`], and
    /// tiles still un-halted at watchdog expiry get a per-tile
    /// [`RunError::Watchdog`] — the set is scheduler-invariant because
    /// both schedulers evolve every tile bit-identically up to the expiry
    /// cycle. [`Fabric::stats`] stays readable after an error so the
    /// recovery policy can account the failed attempt per tile.
    pub fn run(&mut self) -> Result<FabricStats, FabricError> {
        if self.event_queue {
            return self.run_event_queue();
        }
        while self.tiles.iter().any(|t| !t.core.halted()) {
            self.inject_due_faults();
            self.step();
            if self.cycle >= self.max_cycles {
                break;
            }
            if self.cycle_skip {
                self.fast_forward();
                if self.cycle >= self.max_cycles {
                    break;
                }
            }
        }
        self.finish()
    }

    /// Collect the run verdict after either scheduler's loop exits: every
    /// failed tile in tile order (errored cores first-class, un-halted
    /// tiles as per-tile watchdog expiries), or the statistics snapshot
    /// when every tile completed.
    fn finish(&mut self) -> Result<FabricStats, FabricError> {
        // Sweep the fault plan: events still pending when the run ends can
        // never apply (every tile is finished), so tile-targeted ones are
        // counted as dropped on their fault domain. Mid-run take timing for
        // already-stale events differs between schedulers (a stale event
        // no longer bounds park spans); sweeping the remainder here makes
        // the applied/dropped totals scheduler-invariant: an applicable
        // event is always taken at its exact due cycle, and every other
        // tile-targeted event lands in `dropped` — at take time or here.
        if let Some(mut plan) = self.fault_plan.take() {
            for e in plan.take_due(u64::MAX) {
                let t = e.tile as usize;
                if !matches!(e.kind, FaultKind::SramBitFlip { .. }) && t < self.tiles.len() {
                    self.tiles[t].faults_dropped += 1;
                }
            }
        }
        let failed: Vec<(usize, RunError)> = self
            .tiles
            .iter()
            .enumerate()
            .filter_map(|(t, tile)| {
                if let Some(e) = tile.core.error() {
                    Some((t, e))
                } else if !tile.core.halted() {
                    Some((t, RunError::Watchdog(self.max_cycles)))
                } else {
                    None
                }
            })
            .collect();
        if failed.is_empty() {
            Ok(self.stats())
        } else {
            Err(FabricError { tiles: failed })
        }
    }

    /// One tile's scheduling bound from cycle `now`: the earliest cycle at
    /// which the tile can next change architectural state, plus the bulk
    /// replay a parked span `[now, bound)` owes it. `None` means the core
    /// halted (frozen forever); a bound ≤ `now + 1` means the tile must be
    /// stepped. The per-tile classification is the single-tile scheduler's
    /// (see [`crate::legacy::LegacySystem`]).
    ///
    /// Any park not exceeding the bound is *sound* even while other tiles
    /// keep stepping: the only cross-tile coupling is the shared banks, and
    /// the bound never assumes a bank stays free — it only waits on busy
    /// banks, whose `free_at` cannot move until they free (a grant requires
    /// a free bank). Under the DRAM backend a port bound may instead be
    /// the tile's *own* in-flight window draining (see
    /// [`hht_mem::Dram::next_event_for`]) — equally uncoupled, since only
    /// the parked tile's responses occupy its window and a parked tile
    /// issues nothing. Everything else in the bound is the tile's own core
    /// and engine timing, which no other tile can touch.
    fn tile_bound(&mut self, t: usize, now: u64) -> Option<(u64, Replay)> {
        let tile = &mut self.tiles[t];
        let core_at = tile.core.next_event(now)?;
        let mut window_read = None;
        let mut port_wait = None;
        if core_at <= now {
            if let Some(addr) = tile.core.pending_hht_read(now) {
                if !tile.hht.window_read_would_stall(addr, now) {
                    return Some((now, Replay::Busy)); // the pop succeeds this cycle
                }
                window_read = Some(addr);
            } else if let Some(addr) = tile.core.pending_port_addr(now) {
                match self.mem.next_event_for(t, addr, now) {
                    // The span replays one arbitration loss per cycle
                    // against `addr`'s bank, which provably stays busy
                    // until `free_at`.
                    Some(free_at) => port_wait = Some(free_at),
                    None => return Some((now, Replay::Busy)), // bank free: the access lands
                }
            } else {
                return Some((now, Replay::Busy)); // the core acts this cycle
            }
        }
        let hht_bound = match tile.hht.next_event(now) {
            Wake::At(at) => Some(at),
            Wake::NeedsPort { addr } => {
                // Bank-exact resolution: the engine issues the moment
                // the bank serving its named address frees (a busy
                // bank's `free_at` cannot move while the bank is busy). A
                // free bank — or an engine that cannot name its target
                // — means the engine could issue on the very next
                // stepped cycle, so the bound is `now` (no park).
                match addr.map(|a| self.mem.next_event_for(t, a, now)) {
                    Some(Some(free_at)) => Some(free_at),
                    _ => Some(now),
                }
            }
            Wake::OutputBlocked | Wake::Never => None,
        };
        let bound = if let Some(free_at) = port_wait {
            hht_bound.map_or(free_at, |b| b.min(free_at))
        } else if let Some(addr) = window_read {
            // Only the engine can unpark the core; with no engine wake
            // this is a deadlock — jump straight to the watchdog limit
            // (unless a window refill, a timeout or a fault intervenes).
            let mut bound = hht_bound.unwrap_or(self.max_cycles);
            if let Some(ready) = tile.hht.window_ready_at(addr, now) {
                bound = bound.min(ready);
            }
            if let Some(b) = tile.core.hht_timeout_bound(now) {
                bound = bound.min(b);
            }
            bound
        } else {
            hht_bound.map_or(core_at, |b| b.min(core_at))
        };
        let replay = match (window_read, port_wait) {
            (Some(addr), _) => Replay::Window(addr),
            (None, Some(_)) => Replay::Port,
            (None, None) => Replay::Busy,
        };
        Some((bound, replay))
    }

    /// Commit the bulk-replay charges a parked span `[now, now + span)`
    /// owes tile `t` — exactly the per-cycle charges the lock-step loop
    /// would have recorded. Shared by both schedulers.
    fn commit_park(&mut self, t: usize, now: u64, span: u64, plan: &Replay) {
        let tile = &mut self.tiles[t];
        let mut port = FabricPort::new(&mut self.mem, t);
        // Replay the core's charges before the HHT's: the live loop steps
        // CPUs first each cycle, and a tile's cpu-lost and hht-lost port
        // conflicts land in the same per-tile memory event ring, where
        // the stable cycle sort preserves emission order.
        match plan {
            Replay::Window(addr) => {
                tile.core.skip_hht_wait(now, span, *addr);
                tile.hht.skip_stalled_reads(span);
            }
            Replay::Port => {
                tile.core.skip_port_wait(now, span, &mut port);
            }
            Replay::Busy | Replay::Frozen => {}
        }
        tile.hht.skip_idle(now, span, &mut port);
        self.tile_sched[t].skipped_cycles += span;
        self.tile_sched[t].parks += 1;
        if let Some(parks) = self.park_spans.as_mut() {
            parks[t].push(SkipSpan { start: now, end: now + span });
        }
    }

    /// Advance `self.cycle` to the earliest cycle at which *any* tile can
    /// act, replaying the skipped span's per-cycle charges on every live
    /// tile. The fabric skips only when every tile is provably inert, so
    /// the span is the minimum of the per-tile bounds (and of the next
    /// pending fault-injection cycle).
    fn fast_forward(&mut self) {
        let now = self.cycle;
        let mut plans: Vec<Replay> = Vec::with_capacity(self.tiles.len());
        let mut target = u64::MAX;
        for t in 0..self.tiles.len() {
            match self.tile_bound(t, now) {
                // Halted: frozen forever, no bound and nothing to replay.
                None => plans.push(Replay::Frozen),
                Some((bound, replay)) => {
                    if bound <= now + 1 {
                        return; // a tile acts now (or a 1-cycle span): step it
                    }
                    plans.push(replay);
                    target = target.min(bound);
                }
            }
        }
        if target == u64::MAX {
            // Every tile is frozen: the run is over, and a pending fault
            // cycle must not drag the wall clock past the final halt.
            return;
        }
        // Never jump past a pending fault injection that can still land
        // (faults aimed at halted tiles are dropped, not applied, so they
        // must not drag the clock).
        if let Some(fault_at) = self.next_live_fault_cycle() {
            target = target.min(fault_at);
        }
        if target <= now + 1 {
            return; // nothing worth skipping
        }
        let span = (target - now).min(self.max_cycles.saturating_sub(now));
        let parked: Vec<(usize, Replay)> =
            plans.into_iter().enumerate().filter(|(_, p)| !matches!(p, Replay::Frozen)).collect();
        for (t, plan) in parked {
            self.commit_park(t, now, span, &plan);
        }
        self.cycle = now + span;
        self.sched.skipped_cycles += span;
        self.sched.skip_spans += 1;
        if let Some(spans) = self.skip_spans.as_mut() {
            spans.push(SkipSpan { start: now, end: now + span });
        }
    }

    /// Run under the discrete-event scheduler: a min-heap of
    /// `(wake, tile)` entries advances each tile independently to its own
    /// next wake, so a parked tile costs *zero* host work per simulated
    /// cycle instead of a full step. Bit-identical to the lock-step `run`
    /// (the differential oracle, `with_event_queue(false)`) because:
    ///
    /// - every park is bounded by [`Self::tile_bound`], whose span is
    ///   provably inert for the tile, and [`Self::commit_park`] charges it
    ///   exactly what the per-cycle loop would have;
    /// - a parked tile's lock-step steps never grant a bank (inert cycles
    ///   issue no winning accesses), so the shared memory evolves exactly
    ///   as if every tile had been stepped;
    /// - all tiles due on a cycle step in arbiter order, preserving
    ///   call-order bank arbitration among the only tiles that can
    ///   contend;
    /// - no park crosses a pending *live* fault-injection cycle (every
    ///   target is capped by `next_live_fault_cycle`; events aimed at
    ///   halted tiles are dropped at injection in both schedulers, so the
    ///   cumulative take-due set — and therefore every drop decision — is
    ///   scheduler-invariant) or the watchdog limit.
    fn run_event_queue(&mut self) -> Result<FabricStats, FabricError> {
        let n = self.tiles.len();
        // One entry per live tile, always: a tile leaves the heap only by
        // halting. Ties pop lowest-tile-first, but the order never matters
        // — the due set is collected fully, then stepped in arbiter order.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..n)
            .filter(|&t| !self.tiles[t].core.halted())
            .map(|t| Reverse((self.cycle, t)))
            .collect();
        let mut due: Vec<usize> = Vec::with_capacity(n);
        // Tiles halted before ever stepping still get their `done_at`
        // latched after the first stepped cycle, exactly as in lock-step.
        let mut prehalted: Vec<usize> = (0..n).filter(|&t| self.tiles[t].core.halted()).collect();
        'sched: while let Some(&Reverse((wake, _))) = heap.peek() {
            // Jump the clock to the earliest wake. The cycles in between
            // were already paid for when each park's replay committed.
            if wake > self.cycle {
                self.sched.skipped_cycles += wake - self.cycle;
                self.sched.skip_spans += 1;
                if let Some(spans) = self.skip_spans.as_mut() {
                    spans.push(SkipSpan { start: self.cycle, end: wake });
                }
                self.cycle = wake;
                if self.cycle >= self.max_cycles {
                    break 'sched;
                }
            }
            self.inject_due_faults();
            due.clear();
            while let Some(&Reverse((w, t))) = heap.peek() {
                if w > self.cycle {
                    break;
                }
                heap.pop();
                due.push(t);
                self.tile_sched[t].pops += 1;
            }
            // Step the due set: CPUs first, then HHTs, both in arbiter
            // order — call order *is* bank priority, exactly as in `step`.
            let now = self.cycle;
            let start = self.arb_start();
            due.sort_unstable_by_key(|&t| (t + n - start) % n);
            for &t in &due {
                let tile = &mut self.tiles[t];
                let mut port = FabricPort::new(&mut self.mem, t);
                tile.core.step(now, &mut port, &mut tile.hht);
            }
            for &t in &due {
                let tile = &mut self.tiles[t];
                let mut port = FabricPort::new(&mut self.mem, t);
                tile.hht.step(now, &mut port);
            }
            self.cycle = now + 1;
            self.sched.stepped_cycles += 1;
            // Only stepped tiles can newly halt; parked tiles are inert.
            for &t in &due {
                self.tile_sched[t].stepped_cycles += 1;
                let tile = &mut self.tiles[t];
                if tile.done_at.is_none() && tile.core.halted() {
                    tile.done_at = Some(self.cycle);
                }
            }
            if !prehalted.is_empty() {
                for t in prehalted.drain(..) {
                    self.tiles[t].done_at = Some(self.cycle);
                }
            }
            if self.cycle >= self.max_cycles {
                break 'sched;
            }
            // Re-plan every stepped tile from the new cycle: park it to
            // its bound (committing the span's charges eagerly) or
            // re-enqueue it for the next cycle. Halted tiles leave the
            // queue for good.
            let now = self.cycle;
            let fault_at = self.next_live_fault_cycle();
            for &t in &due {
                if self.tiles[t].core.halted() {
                    continue;
                }
                let Some((bound, plan)) = self.tile_bound(t, now) else {
                    continue;
                };
                let mut target = bound.min(self.max_cycles);
                if let Some(f) = fault_at {
                    target = target.min(f);
                }
                if target > now {
                    self.commit_park(t, now, target - now, &plan);
                    heap.push(Reverse((target, t)));
                } else {
                    heap.push(Reverse((now, t)));
                }
            }
        }
        self.finish()
    }

    /// Statistics snapshot: per-tile [`SystemStats`] plus the shared-memory
    /// aggregates. A still-running (or never-halting) tile reports the
    /// current cycle as its `cycles`.
    pub fn stats(&self) -> FabricStats {
        let tiles = self
            .tiles
            .iter()
            .enumerate()
            .map(|(t, tile)| SystemStats {
                cycles: tile.done_at.unwrap_or(self.cycle),
                core: tile.core.stats(),
                hht: tile.hht.stats(),
                sram: self.mem.stats_for(t),
                faults: FaultSummary {
                    injected: tile.faults_injected,
                    dropped: tile.faults_dropped,
                    ..FaultSummary::default()
                },
            })
            .collect();
        FabricStats { cycles: self.cycle, tiles, mem: self.mem.shared_stats() }
    }

    /// Read the output vector from the shared memory after a run.
    pub fn read_output(&self, y_base: u32, n: usize) -> DenseVector {
        DenseVector::from(self.mem.read_f32s(y_base, n))
    }

    /// Borrow the memory (for test inspection).
    pub fn mem(&self) -> &FabricMemory {
        &self.mem
    }

    /// Borrow one tile's core (for test inspection).
    pub fn core(&self, tile: usize) -> &Core {
        &self.tiles[tile].core
    }

    /// True when a fatal ([`hht_fault::FaultKind::is_fatal`]) fault landed
    /// on tile `t`: the recovery policy must quarantine it outright instead
    /// of spending retries.
    pub fn tile_fatal(&self, t: usize) -> bool {
        self.tiles[t].fatal
    }

    /// Host-side scheduler accounting: stepped vs skipped simulated cycles.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched
    }

    /// Host-side per-tile scheduler accounting (queue pops, stepped vs
    /// parked cycles). Indexed by tile.
    pub fn tile_sched_stats(&self) -> &[TileSchedStats] {
        &self.tile_sched
    }

    /// Move the recorded per-tile parked spans out of the scheduler's sink
    /// (empty when tracing is off). `result[t]` is tile `t`'s parked spans
    /// in chronological order; under the lock-step scheduler every live
    /// tile records each global fast-forward span.
    pub fn take_park_spans(&mut self) -> Vec<Vec<SkipSpan>> {
        self.park_spans.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Move the recorded fast-forward spans out of the scheduler's sink
    /// (empty when tracing is off or the per-cycle scheduler ran).
    pub fn take_skip_spans(&mut self) -> Vec<SkipSpan> {
        self.skip_spans.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Ring-buffer eviction counters for one tile's observability sinks.
    /// Read *before* draining events: `take_*` resets the rings.
    pub fn obs_drops_for(&self, t: usize) -> ObsDrops {
        let tile = &self.tiles[t];
        ObsDrops {
            core_events: tile.core.events_dropped(),
            instr_trace: tile.core.trace_dropped(),
            hht_events: tile.hht.events_dropped(),
            mem_events: self.mem.events_dropped_for(t),
            fault_events: tile.obs.as_ref().map_or(0, |b| b.dropped()),
        }
    }

    /// Ring-buffer eviction counters summed over every tile.
    pub fn obs_drops(&self) -> ObsDrops {
        let mut acc = ObsDrops::default();
        for t in 0..self.tiles.len() {
            acc.add(&self.obs_drops_for(t));
        }
        acc
    }

    /// Drain one tile's event streams into a cycle-ordered timeline, in the
    /// same per-component merge order the single-tile system uses (core,
    /// HHT, memory port, fault timeline).
    pub fn take_tile_events(&mut self, t: usize) -> Vec<Event> {
        let tile = &mut self.tiles[t];
        let system = tile.obs.as_mut().map(|b| b.take_events()).unwrap_or_default();
        merge_events(vec![
            tile.core.take_events(),
            tile.hht.take_events(),
            self.mem.take_events_for(t),
            system,
        ])
    }

    /// Drain every tile's event streams: one cycle-ordered timeline per
    /// tile (feed to [`hht_obs::chrome::chrome_trace_json_tiles`] for one
    /// trace lane per tile).
    pub fn take_all_events(&mut self) -> Vec<Vec<Event>> {
        (0..self.tiles.len()).map(|t| self.take_tile_events(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_isa::asm::assemble;
    use hht_mem::Sram;

    fn mem_for(cfg: &SystemConfig, fab: FabricConfig) -> SharedMemory {
        SharedMemory::from_sram(Sram::new(cfg.ram_size, cfg.ram_word_cycles), fab.banks, fab.tiles)
    }

    #[test]
    fn two_trivial_tiles_run_to_completion() {
        let cfg = SystemConfig::paper_default();
        let fab = FabricConfig { tiles: 2, banks: 2, arb: ArbPolicy::RoundRobin };
        let p = assemble("li a0, 1\nebreak").unwrap();
        let mut fabric = Fabric::new(&cfg, fab, vec![p.clone(), p], mem_for(&cfg, fab));
        let stats = fabric.run().unwrap();
        assert_eq!(stats.tiles.len(), 2);
        for t in &stats.tiles {
            assert_eq!(t.core.instructions, 2);
            assert!(t.cycles >= 2);
            assert!(t.cycles <= stats.cycles);
        }
        let merged = stats.merged();
        assert_eq!(merged.core.instructions, 4);
        assert_eq!(merged.cycles, stats.tiles.iter().map(|t| t.cycles).sum::<u64>());
    }

    #[test]
    fn tiles_of_different_length_freeze_independently() {
        let cfg = SystemConfig::paper_default();
        let fab = FabricConfig { tiles: 2, banks: 1, arb: ArbPolicy::FixedPriority };
        let short = assemble("ebreak").unwrap();
        let long = assemble("li t0, 50\nloop: addi t0, t0, -1\nbnez t0, loop\nebreak").unwrap();
        let mut fabric = Fabric::new(&cfg, fab, vec![short, long], mem_for(&cfg, fab));
        let stats = fabric.run().unwrap();
        assert!(stats.tiles[0].cycles < stats.tiles[1].cycles);
        assert_eq!(stats.cycles, stats.tiles[1].cycles);
        // The short tile's counters froze with it.
        assert_eq!(stats.tiles[0].core.instructions, 1);
    }

    #[test]
    fn guest_fault_on_any_tile_is_an_error() {
        let cfg = SystemConfig::paper_default();
        let fab = FabricConfig { tiles: 2, banks: 1, arb: ArbPolicy::FixedPriority };
        let ok = assemble("ebreak").unwrap();
        let bad = assemble("li a0, 0x50000000\nlw a1, 0(a0)\nebreak").unwrap();
        let mut fabric = Fabric::new(&cfg, fab, vec![ok, bad], mem_for(&cfg, fab));
        assert!(fabric.run().is_err());
    }

    #[test]
    fn merged_fracs_stay_in_unit_interval() {
        let cfg = SystemConfig::paper_default();
        let fab = FabricConfig { tiles: 4, banks: 2, arb: ArbPolicy::RoundRobin };
        let p = assemble("li t0, 20\nloop: addi t0, t0, -1\nbnez t0, loop\nebreak").unwrap();
        let mut fabric =
            Fabric::new(&cfg, fab, vec![p.clone(), p.clone(), p.clone(), p], mem_for(&cfg, fab));
        let stats = fabric.run().unwrap();
        for f in [stats.cpu_wait_frac(), stats.hht_wait_frac(), stats.bank_conflict_frac()] {
            assert!((0.0..=1.0).contains(&f), "frac {f} out of range");
        }
    }
}
