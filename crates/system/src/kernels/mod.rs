//! The kernel library: every program the evaluation runs, emitted as real
//! RV32IMF+V assembly through [`hht_isa::builder::KernelBuilder`].
//!
//! Baselines implement Algorithm 1 (and its SpMSpV merge counterpart) on
//! the CPU alone — including the indirect `v[cols[k]]` accesses via the
//! vector indexed-load, "similar to Intel AVX2 Gather" (§5.4). HHT kernels
//! program the accelerator's MMRs, start it, and consume pre-gathered
//! values from the fixed buffer windows.
//!
//! Register conventions shared by all kernels:
//!
//! | reg | meaning |
//! |---|---|
//! | `a0` | rows (row-pointer) base |
//! | `a1` | cols base |
//! | `a2` | vals base |
//! | `a3` | dense vector base |
//! | `a4` | y base |
//! | `a5` | number of rows |
//! | `a6` | HHT primary window |
//! | `a7` | HHT secondary window |
//! | `s7` | HHT counts window |

mod smash;
mod spmspv;
mod spmspv_csc;
mod spmv;

pub use smash::smash_spmv_hht;
pub use spmspv::{spmspv_baseline, spmspv_hht_v1, spmspv_hht_v2};
pub use spmspv_csc::{layout_spmspv_csc, spmspv_csc_baseline};
pub use spmv::{dense_matvec, spmv_baseline, spmv_hht, spmv_hht_programmable};

use crate::layout::ProblemLayout;
use hht_accel::mmr::reg;
use hht_accel::Mode;
use hht_isa::builder::KernelBuilder;
use hht_isa::Reg;
use hht_mem::map;

/// Emit the MMR programming sequence (§3.1): store each configuration
/// register, then set `Start` last. Uses `t5`/`t6` as scratch.
pub(crate) fn emit_hht_setup(b: &mut KernelBuilder, l: &ProblemLayout, mode: Mode) {
    let t5 = Reg::t(5);
    let t6 = Reg::t(6);
    b.li(t6, map::HHT_MMR_BASE as i32);
    let (rows_base, cols_base) = match mode {
        // SMASH mode reuses the metadata base registers for the bitmaps.
        Mode::Smash => (l.smash_l0_base, l.smash_l1_base),
        _ => (l.rows_base, l.cols_base),
    };
    let writes: &[(u32, u32)] = &[
        (reg::M_NUM_ROWS, l.num_rows),
        (reg::M_ROWS_BASE, rows_base),
        (reg::M_COLS_BASE, cols_base),
        (reg::M_VALS_BASE, l.vals_base),
        (reg::V_BASE, l.v_base),
        (reg::V_IDX_BASE, l.x_idx_base),
        (reg::V_VALS_BASE, l.x_vals_base),
        (reg::V_NNZ, l.x_nnz),
        (reg::M_NNZ, l.m_nnz),
        (reg::ELEMENT_SIZES, (l.num_cols << 16) | 4),
        (reg::MODE, mode as u32),
        (reg::START, 1),
    ];
    for (off, value) in writes {
        b.li(t5, *value as i32);
        b.sw(t5, *off as i32, t6);
    }
}

/// Emit the per-tile MMR reprogramming used by [`crate::tiling`]: all
/// values come from registers loaded out of a tile descriptor, `START` is
/// written last. `mmr` must already hold the MMR window base; `scratch`
/// registers hold the descriptor fields.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_hht_setup_regs(
    b: &mut KernelBuilder,
    mmr: Reg,
    rows_base: Reg,
    cols_base: Reg,
    vals_base: Reg,
    v_base: Reg,
    num_rows: Reg,
    m_nnz: Reg,
) {
    b.sw(num_rows, reg::M_NUM_ROWS as i32, mmr);
    b.sw(rows_base, reg::M_ROWS_BASE as i32, mmr);
    b.sw(cols_base, reg::M_COLS_BASE as i32, mmr);
    b.sw(vals_base, reg::M_VALS_BASE as i32, mmr);
    b.sw(v_base, reg::V_BASE as i32, mmr);
    b.sw(m_nnz, reg::M_NNZ as i32, mmr);
    // Start bit last (§3.1). Use t4 as scratch: the tile-loop kernel does
    // not keep live state there.
    let t4 = Reg::t(4);
    b.li(t4, 1);
    b.sw(t4, reg::START as i32, mmr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_isa::Instr;

    #[test]
    fn setup_ends_with_start_write() {
        let mut b = KernelBuilder::new(0);
        let l = ProblemLayout {
            rows_base: 0x100,
            cols_base: 0x200,
            vals_base: 0x300,
            v_base: 0x400,
            x_idx_base: 0,
            x_vals_base: 0,
            y_base: 0x500,
            smash_l0_base: 0,
            smash_l1_base: 0,
            num_rows: 4,
            num_cols: 4,
            m_nnz: 7,
            x_nnz: 0,
        };
        emit_hht_setup(&mut b, &l, Mode::SpMV);
        b.ebreak();
        let p = b.build();
        // The last store before ebreak must target the START register.
        let stores: Vec<&Instr> =
            p.instrs().iter().filter(|i| matches!(i, Instr::Sw { .. })).collect();
        match stores.last().unwrap() {
            Instr::Sw { offset, .. } => assert_eq!(*offset, reg::START as i32),
            _ => unreachable!(),
        }
        assert_eq!(stores.len(), 12);
    }

    #[test]
    fn smash_setup_points_at_bitmaps() {
        let mut b = KernelBuilder::new(0);
        let l = ProblemLayout {
            rows_base: 0,
            cols_base: 0,
            vals_base: 0x300,
            v_base: 0x400,
            x_idx_base: 0,
            x_vals_base: 0,
            y_base: 0x500,
            smash_l0_base: 0x1000,
            smash_l1_base: 0x2000,
            num_rows: 64,
            num_cols: 64,
            m_nnz: 9,
            x_nnz: 0,
        };
        emit_hht_setup(&mut b, &l, Mode::Smash);
        b.ebreak();
        // Find the li t5, 0x1000 used for M_ROWS_BASE.
        let p = b.build();
        let has_l0 = p.instrs().iter().any(|i| {
            matches!(i, Instr::OpImm { imm, .. } if *imm == 0x1000)
                || matches!(i, Instr::Lui { imm20, .. } if *imm20 == 1)
        });
        assert!(has_l0, "level-0 bitmap base not programmed");
    }
}
