//! SpMV kernels: CSR Algorithm 1, baseline and HHT-assisted, in both the
//! vectorized (RVV) and scalar forms.

use super::emit_hht_setup;
use crate::layout::ProblemLayout;
use hht_accel::hht::window;
use hht_accel::Mode;
use hht_isa::builder::KernelBuilder;
use hht_isa::{FReg, Program, Reg, VReg};
use hht_mem::map;

const A0: Reg = Reg::a(0);
const A1: Reg = Reg::a(1);
const A2: Reg = Reg::a(2);
const A3: Reg = Reg::a(3);
const A4: Reg = Reg::a(4);
const A5: Reg = Reg::a(5);
const A6: Reg = Reg::a(6);

fn emit_bases(b: &mut KernelBuilder, l: &ProblemLayout) {
    b.li(A0, l.rows_base as i32);
    b.li(A1, l.cols_base as i32);
    b.li(A2, l.vals_base as i32);
    b.li(A3, l.v_base as i32);
    b.li(A4, l.y_base as i32);
    b.li(A5, l.num_rows as i32);
}

/// Baseline SpMV (Algorithm 1). `vectorized = false` emits the pure scalar
/// loop (used when VL = 1, Fig. 8); otherwise the RVV strip-mined loop
/// whose inner body is: load column indices, scale to byte offsets, gather
/// `v` with the indexed load, load values, fused multiply-accumulate.
pub fn spmv_baseline(l: &ProblemLayout, vectorized: bool) -> Program {
    if vectorized {
        spmv_baseline_vector(l)
    } else {
        spmv_baseline_scalar(l)
    }
}

fn spmv_baseline_vector(l: &ProblemLayout) -> Program {
    let mut b = KernelBuilder::new(0);
    let (s0, s1, s2, s3, s4, s5, s6) =
        (Reg::s(0), Reg::s(1), Reg::s(2), Reg::s(3), Reg::s(4), Reg::s(5), Reg::s(6));
    let (t0, t2, t5, t6) = (Reg::t(0), Reg::t(2), Reg::t(5), Reg::t(6));
    let (v0, v1, v2, v3, v4, v5) =
        (VReg::new(0), VReg::new(1), VReg::new(2), VReg::new(3), VReg::new(4), VReg::new(5));
    emit_bases(&mut b, l);
    b.li(s0, 0); // row index i
    b.lw(s1, 0, A0); // prev = rows[0]
    b.addi(s5, A0, 4); // &rows[i+1]
    b.mv(s6, A4); // y cursor
    b.slli(t0, s1, 2);
    b.add(s3, A1, t0); // cols cursor
    b.add(s4, A2, t0); // vals cursor
    let row_loop = b.here();
    b.name("row_loop");
    let done = b.label();
    b.bge(s0, A5, done);
    b.lw(t2, 0, s5); // rows[i+1]
    b.sub(s2, t2, s1); // nnz this row
    b.vsetvli(t0, Reg::ZERO); // full width for the accumulator
    b.vmv_v_i(v0, 0);
    let inner = b.here();
    b.name("inner");
    let row_done = b.label();
    b.beqz(s2, row_done);
    b.vsetvli(t5, s2); // vl = min(VLMAX, remaining)
    b.vle32(v1, s3); // column indices
    b.vsll_vi(v1, v1, 2); // element index -> byte offset
    b.vluxei32(v2, A3, v1); // gather v[cols[k]]
    b.vle32(v3, s4); // matrix values
    b.vfmacc_vv(v0, v2, v3);
    b.slli(t6, t5, 2);
    b.add(s3, s3, t6);
    b.add(s4, s4, t6);
    b.sub(s2, s2, t5);
    b.j(inner);
    b.bind(row_done);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v4, 0);
    b.vfredosum_vs(v5, v0, v4);
    b.vfmv_f_s(FReg::a(0), v5);
    b.fsw(FReg::a(0), 0, s6);
    b.addi(s6, s6, 4);
    b.addi(s5, s5, 4);
    b.mv(s1, t2);
    b.addi(s0, s0, 1);
    b.j(row_loop);
    b.bind(done);
    b.ebreak();
    b.build()
}

fn spmv_baseline_scalar(l: &ProblemLayout) -> Program {
    let mut b = KernelBuilder::new(0);
    let (s0, s1, s3, s4, s5, s6) =
        (Reg::s(0), Reg::s(1), Reg::s(3), Reg::s(4), Reg::s(5), Reg::s(6));
    let (t0, t2, t3, t5) = (Reg::t(0), Reg::t(2), Reg::t(3), Reg::t(5));
    let (fa0, fa1, fa2) = (FReg::a(0), FReg::a(1), FReg::a(2));
    emit_bases(&mut b, l);
    b.li(s0, 0);
    b.lw(s1, 0, A0);
    b.addi(s5, A0, 4);
    b.mv(s6, A4);
    b.slli(t0, s1, 2);
    b.add(s3, A1, t0); // cols cursor
    b.add(s4, A2, t0); // vals cursor
    let row_loop = b.here();
    let done = b.label();
    b.bge(s0, A5, done);
    b.lw(t2, 0, s5); // rows[i+1]
    b.mv(t3, s1); // k = rows[i]
    b.fmv_w_x(fa0, Reg::ZERO); // s = 0
    let inner = b.here();
    let row_done = b.label();
    b.bge(t3, t2, row_done);
    b.lw(t5, 0, s3); // col
    b.slli(t5, t5, 2);
    b.add(t5, A3, t5);
    b.flw(fa1, 0, t5); // v[col] — the indirect access
    b.flw(fa2, 0, s4); // vals[k]
    b.fmadd_s(fa0, fa1, fa2, fa0);
    b.addi(s3, s3, 4);
    b.addi(s4, s4, 4);
    b.addi(t3, t3, 1);
    b.j(inner);
    b.bind(row_done);
    b.fsw(fa0, 0, s6);
    b.addi(s6, s6, 4);
    b.addi(s5, s5, 4);
    b.mv(s1, t2);
    b.addi(s0, s0, 1);
    b.j(row_loop);
    b.bind(done);
    b.ebreak();
    b.build()
}

/// HHT-assisted SpMV: the CPU programs the accelerator, then consumes
/// pre-gathered vector values from the primary window — no column loads,
/// no address arithmetic, no gather (§3.1: "The CPU performs vector loads
/// of buffered values and multiply-accumulates into the output vector").
pub fn spmv_hht(l: &ProblemLayout, vectorized: bool) -> Program {
    if vectorized {
        spmv_hht_vector(l, Mode::SpMV)
    } else {
        spmv_hht_scalar(l, Mode::SpMV)
    }
}

/// HHT-assisted SpMV with the *programmable* back-end of §7: identical
/// CPU-side code, but `MODE` selects the helper-core microprogram instead
/// of the ASIC gather FSM.
pub fn spmv_hht_programmable(l: &ProblemLayout, vectorized: bool) -> Program {
    if vectorized {
        spmv_hht_vector(l, Mode::ProgrammableSpMV)
    } else {
        spmv_hht_scalar(l, Mode::ProgrammableSpMV)
    }
}

fn spmv_hht_vector(l: &ProblemLayout, mode: Mode) -> Program {
    let mut b = KernelBuilder::new(0);
    let (s0, s1, s2, s4, s5, s6) =
        (Reg::s(0), Reg::s(1), Reg::s(2), Reg::s(4), Reg::s(5), Reg::s(6));
    let (t0, t2, t5, t6) = (Reg::t(0), Reg::t(2), Reg::t(5), Reg::t(6));
    let (v0, v2, v3, v4, v5) =
        (VReg::new(0), VReg::new(2), VReg::new(3), VReg::new(4), VReg::new(5));
    emit_bases(&mut b, l);
    emit_hht_setup(&mut b, l, mode);
    b.li(A6, (map::HHT_BUF_BASE + window::PRIMARY) as i32);
    b.li(s0, 0);
    b.lw(s1, 0, A0);
    b.addi(s5, A0, 4);
    b.mv(s6, A4);
    b.slli(t0, s1, 2);
    b.add(s4, A2, t0); // vals cursor
    let row_loop = b.here();
    let done = b.label();
    b.bge(s0, A5, done);
    b.lw(t2, 0, s5);
    b.sub(s2, t2, s1);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v0, 0);
    let inner = b.here();
    let row_done = b.label();
    b.beqz(s2, row_done);
    b.vsetvli(t5, s2);
    b.vle32(v2, A6); // gathered v values from the HHT window
    b.vle32(v3, s4); // matrix values
    b.vfmacc_vv(v0, v2, v3);
    b.slli(t6, t5, 2);
    b.add(s4, s4, t6);
    b.sub(s2, s2, t5);
    b.j(inner);
    b.bind(row_done);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v4, 0);
    b.vfredosum_vs(v5, v0, v4);
    b.vfmv_f_s(FReg::a(0), v5);
    b.fsw(FReg::a(0), 0, s6);
    b.addi(s6, s6, 4);
    b.addi(s5, s5, 4);
    b.mv(s1, t2);
    b.addi(s0, s0, 1);
    b.j(row_loop);
    b.bind(done);
    b.ebreak();
    b.build()
}

fn spmv_hht_scalar(l: &ProblemLayout, mode: Mode) -> Program {
    let mut b = KernelBuilder::new(0);
    let (s0, s1, s4, s5, s6) = (Reg::s(0), Reg::s(1), Reg::s(4), Reg::s(5), Reg::s(6));
    let (t0, t2, t3) = (Reg::t(0), Reg::t(2), Reg::t(3));
    let (fa0, fa1, fa2) = (FReg::a(0), FReg::a(1), FReg::a(2));
    emit_bases(&mut b, l);
    emit_hht_setup(&mut b, l, mode);
    b.li(A6, (map::HHT_BUF_BASE + window::PRIMARY) as i32);
    b.li(s0, 0);
    b.lw(s1, 0, A0);
    b.addi(s5, A0, 4);
    b.mv(s6, A4);
    b.slli(t0, s1, 2);
    b.add(s4, A2, t0);
    let row_loop = b.here();
    let done = b.label();
    b.bge(s0, A5, done);
    b.lw(t2, 0, s5);
    b.mv(t3, s1);
    b.fmv_w_x(fa0, Reg::ZERO);
    let inner = b.here();
    let row_done = b.label();
    b.bge(t3, t2, row_done);
    b.flw(fa1, 0, A6); // gathered v value (may stall until HHT fills)
    b.flw(fa2, 0, s4); // vals[k]
    b.fmadd_s(fa0, fa1, fa2, fa0);
    b.addi(s4, s4, 4);
    b.addi(t3, t3, 1);
    b.j(inner);
    b.bind(row_done);
    b.fsw(fa0, 0, s6);
    b.addi(s6, s6, 4);
    b.addi(s5, s5, 4);
    b.mv(s1, t2);
    b.addi(s0, s0, 1);
    b.j(row_loop);
    b.bind(done);
    b.ebreak();
    b.build()
}

/// Dense matrix-vector product: no metadata at all, `rows x cols` fused
/// multiply-accumulates over unit-stride streams. This is the "expand
/// sparse data into dense by inserting zeroes" comparator of §6 ([40],
/// [23]): at low sparsity it beats the sparse code because every load is
/// sequential and there is no index work.
pub fn dense_matvec(l: &ProblemLayout) -> Program {
    let mut b = KernelBuilder::new(0);
    let (s0, s2, s3, s6, s8) = (Reg::s(0), Reg::s(2), Reg::s(3), Reg::s(6), Reg::s(8));
    let (t0, t3, t5, t6) = (Reg::t(0), Reg::t(3), Reg::t(5), Reg::t(6));
    let (v0, v1, v2, v4, v5) =
        (VReg::new(0), VReg::new(1), VReg::new(2), VReg::new(4), VReg::new(5));
    b.li(A2, l.vals_base as i32); // dense matrix, row-major
    b.li(A3, l.v_base as i32);
    b.li(A4, l.y_base as i32);
    b.li(A5, l.num_rows as i32);
    b.li(s8, l.num_cols as i32);
    b.li(s0, 0);
    b.mv(s6, A4); // y cursor
    b.mv(s3, A2); // matrix cursor (runs continuously row-major)
    let row_loop = b.here();
    let done = b.label();
    b.bge(s0, A5, done);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v0, 0);
    b.mv(t3, s8); // columns remaining
    b.mv(s2, A3); // v cursor restarts per row
    let inner = b.here();
    let row_done = b.label();
    b.beqz(t3, row_done);
    b.vsetvli(t5, t3);
    b.vle32(v1, s3); // matrix row slice
    b.vle32(v2, s2); // v slice
    b.vfmacc_vv(v0, v1, v2);
    b.slli(t6, t5, 2);
    b.add(s3, s3, t6);
    b.add(s2, s2, t6);
    b.sub(t3, t3, t5);
    b.j(inner);
    b.bind(row_done);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v4, 0);
    b.vfredosum_vs(v5, v0, v4);
    b.vfmv_f_s(FReg::a(0), v5);
    b.fsw(FReg::a(0), 0, s6);
    b.addi(s6, s6, 4);
    b.addi(s0, s0, 1);
    b.j(row_loop);
    b.bind(done);
    b.ebreak();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_layout() -> ProblemLayout {
        ProblemLayout {
            rows_base: 0x100,
            cols_base: 0x200,
            vals_base: 0x300,
            v_base: 0x400,
            x_idx_base: 0,
            x_vals_base: 0,
            y_base: 0x500,
            smash_l0_base: 0,
            smash_l1_base: 0,
            num_rows: 8,
            num_cols: 8,
            m_nnz: 16,
            x_nnz: 0,
        }
    }

    #[test]
    fn baseline_vector_uses_gather() {
        let p = spmv_baseline(&dummy_layout(), true);
        assert!(p.instrs().iter().any(|i| matches!(i, hht_isa::Instr::Vluxei32 { .. })));
        assert!(p.instrs().iter().any(|i| matches!(i, hht_isa::Instr::Ebreak)));
    }

    #[test]
    fn hht_vector_has_no_gather_and_no_col_loads() {
        let p = spmv_hht(&dummy_layout(), true);
        assert!(!p.instrs().iter().any(|i| matches!(i, hht_isa::Instr::Vluxei32 { .. })));
        assert!(!p.instrs().iter().any(|i| matches!(i, hht_isa::Instr::VsllVI { .. })));
    }

    #[test]
    fn scalar_variants_have_no_vector_instructions() {
        for p in [spmv_baseline(&dummy_layout(), false), spmv_hht(&dummy_layout(), false)] {
            assert!(!p.instrs().iter().any(|i| i.is_vector()), "scalar kernel uses vector op");
        }
    }

    #[test]
    fn hht_kernels_program_the_mmrs() {
        let p = spmv_hht(&dummy_layout(), true);
        let mmr_stores =
            p.instrs().iter().filter(|i| matches!(i, hht_isa::Instr::Sw { .. })).count();
        assert!(mmr_stores >= 12, "expected MMR programming stores");
    }
}
