//! SpMSpV kernels: the CPU-only merge baseline and the two HHT variants of
//! §5.1.

use super::emit_hht_setup;
use crate::layout::ProblemLayout;
use hht_accel::hht::window;
use hht_accel::Mode;
use hht_isa::builder::KernelBuilder;
use hht_isa::{FReg, Program, Reg, VReg};
use hht_mem::map;

const A0: Reg = Reg::a(0);
const A1: Reg = Reg::a(1);
const A2: Reg = Reg::a(2);
const A3: Reg = Reg::a(3);
const A4: Reg = Reg::a(4);
const A5: Reg = Reg::a(5);
const A6: Reg = Reg::a(6);
const A7: Reg = Reg::a(7);

/// Baseline SpMSpV: per row, a scalar two-pointer merge of the row's
/// column indices against the sparse vector's indices — the CPU performs
/// every index comparison itself. (This is the work §1 describes: "SpMSpV
/// requires the alignment of non-zero elements of Matrix with non-zero
/// elements of the Vector".)
///
/// Register use: `a3` = x index array, `a4` = x value array (dense-vector
/// register is unused), `a7` = y base, `s8` = x nnz.
pub fn spmspv_baseline(l: &ProblemLayout) -> Program {
    let mut b = KernelBuilder::new(0);
    let (s0, s1, s5, s6, s8) = (Reg::s(0), Reg::s(1), Reg::s(5), Reg::s(6), Reg::s(8));
    let (t2, t3, t4, t5, t6) = (Reg::t(2), Reg::t(3), Reg::t(4), Reg::t(5), Reg::t(6));
    let s9 = Reg::s(9);
    let (fa0, fa1, fa2) = (FReg::a(0), FReg::a(1), FReg::a(2));
    b.li(A0, l.rows_base as i32);
    b.li(A1, l.cols_base as i32);
    b.li(A2, l.vals_base as i32);
    b.li(A3, l.x_idx_base as i32);
    b.li(A4, l.x_vals_base as i32);
    b.li(A5, l.num_rows as i32);
    b.li(A7, l.y_base as i32);
    b.li(s8, l.x_nnz as i32);
    b.li(s0, 0); // i
    b.lw(s1, 0, A0); // rows[0]
    b.addi(s5, A0, 4); // &rows[i+1]
    b.mv(s6, A7); // y cursor
    let row_loop = b.here();
    let done = b.label();
    b.bge(s0, A5, done);
    b.lw(t2, 0, s5); // rows[i+1]
    b.mv(t3, s1); // k
    b.li(s9, 0); // b (vector cursor)
    b.fmv_w_x(fa0, Reg::ZERO);
    let merge = b.here();
    let row_done = b.label();
    b.bge(t3, t2, row_done); // row exhausted
    b.bge(s9, s8, row_done); // vector exhausted
                             // load col = cols[k]
    b.slli(t4, t3, 2);
    b.add(t4, A1, t4);
    b.lw(t4, 0, t4);
    // load vidx = x_idx[b]
    b.slli(t5, s9, 2);
    b.add(t5, A3, t5);
    b.lw(t5, 0, t5);
    let matched = b.label();
    let adv_m = b.label();
    b.beq(t4, t5, matched);
    b.blt(t4, t5, adv_m);
    b.addi(s9, s9, 1); // vidx behind
    b.j(merge);
    b.bind(adv_m);
    b.addi(t3, t3, 1); // col behind
    b.j(merge);
    b.bind(matched);
    b.slli(t6, t3, 2);
    b.add(t6, A2, t6);
    b.flw(fa1, 0, t6); // vals[k]
    b.slli(t6, s9, 2);
    b.add(t6, A4, t6);
    b.flw(fa2, 0, t6); // x_vals[b]
    b.fmadd_s(fa0, fa1, fa2, fa0);
    b.addi(t3, t3, 1);
    b.addi(s9, s9, 1);
    b.j(merge);
    b.bind(row_done);
    b.fsw(fa0, 0, s6);
    b.addi(s6, s6, 4);
    b.addi(s5, s5, 4);
    b.mv(s1, t2);
    b.addi(s0, s0, 1);
    b.j(row_loop);
    b.bind(done);
    b.ebreak();
    b.build()
}

/// HHT SpMSpV variant-1: the accelerator supplies aligned (matrix value,
/// vector value) pairs plus chunk headers; the CPU just
/// multiply-accumulates the pairs (§5.1: "the application CPU multiplies
/// the pairs of values and accumulates the products").
///
/// Per row, the CPU alternates: read one header word from the counts
/// window (`count | last<<31`), consume `count` aligned pairs, repeat
/// until a header with the `last` bit closes the row.
pub fn spmspv_hht_v1(l: &ProblemLayout) -> Program {
    let mut b = KernelBuilder::new(0);
    let (s0, s6, s7) = (Reg::s(0), Reg::s(6), Reg::s(7));
    let (t0, t2, t3, t4, t5) = (Reg::t(0), Reg::t(2), Reg::t(3), Reg::t(4), Reg::t(5));
    let (v0, v1, v2, v4, v5) =
        (VReg::new(0), VReg::new(1), VReg::new(2), VReg::new(4), VReg::new(5));
    b.li(A5, l.num_rows as i32);
    b.li(A7, l.y_base as i32);
    emit_hht_setup(&mut b, l, Mode::SpMSpVAligned);
    b.li(A6, (map::HHT_BUF_BASE + window::PRIMARY) as i32);
    let a7w = Reg::s(10);
    b.li(a7w, (map::HHT_BUF_BASE + window::SECONDARY) as i32);
    b.li(s7, (map::HHT_BUF_BASE + window::COUNTS) as i32);
    b.li(s0, 0);
    b.mv(s6, A7);
    let row_loop = b.here();
    let done = b.label();
    b.bge(s0, A5, done);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v0, 0);
    let chunk_loop = b.here();
    b.lw(t2, 0, s7); // chunk header (stalls until the chunk is closed)
    b.srli(t4, t2, 31); // last-of-row flag
    b.slli(t3, t2, 1); // count = header with bit 31 cleared
    b.srli(t3, t3, 1);
    let inner = b.here();
    let chunk_done = b.label();
    b.beqz(t3, chunk_done);
    b.vsetvli(t5, t3);
    b.vle32(v1, A6); // aligned vector values
    b.vle32(v2, a7w); // aligned matrix values
    b.vfmacc_vv(v0, v1, v2);
    b.sub(t3, t3, t5);
    b.j(inner);
    b.bind(chunk_done);
    b.beqz(t4, chunk_loop); // more chunks in this row
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v4, 0);
    b.vfredosum_vs(v5, v0, v4);
    b.vfmv_f_s(FReg::a(0), v5);
    b.fsw(FReg::a(0), 0, s6);
    b.addi(s6, s6, 4);
    b.addi(s0, s0, 1);
    b.j(row_loop);
    b.bind(done);
    b.ebreak();
    b.build()
}

/// HHT SpMSpV variant-2: the accelerator supplies the vector value (or
/// zero) for every matrix non-zero; the CPU streams matrix values
/// unit-stride and multiply-accumulates — identical CPU-side code to the
/// HHT SpMV kernel, just a different accelerator mode (§5.1).
pub fn spmspv_hht_v2(l: &ProblemLayout) -> Program {
    let mut b = KernelBuilder::new(0);
    let (s0, s1, s2, s4, s5, s6) =
        (Reg::s(0), Reg::s(1), Reg::s(2), Reg::s(4), Reg::s(5), Reg::s(6));
    let (t0, t2, t5, t6) = (Reg::t(0), Reg::t(2), Reg::t(5), Reg::t(6));
    let (v0, v2, v3, v4, v5) =
        (VReg::new(0), VReg::new(2), VReg::new(3), VReg::new(4), VReg::new(5));
    b.li(A0, l.rows_base as i32);
    b.li(A2, l.vals_base as i32);
    b.li(A5, l.num_rows as i32);
    b.li(A7, l.y_base as i32);
    emit_hht_setup(&mut b, l, Mode::SpMSpVValueOrZero);
    b.li(A6, (map::HHT_BUF_BASE + window::PRIMARY) as i32);
    b.li(s0, 0);
    b.lw(s1, 0, A0);
    b.addi(s5, A0, 4);
    b.mv(s6, A7);
    b.slli(t0, s1, 2);
    b.add(s4, A2, t0);
    let row_loop = b.here();
    let done = b.label();
    b.bge(s0, A5, done);
    b.lw(t2, 0, s5);
    b.sub(s2, t2, s1);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v0, 0);
    let inner = b.here();
    let row_done = b.label();
    b.beqz(s2, row_done);
    b.vsetvli(t5, s2);
    b.vle32(v2, A6); // x value or zero, from the HHT
    b.vle32(v3, s4); // matrix values
    b.vfmacc_vv(v0, v2, v3);
    b.slli(t6, t5, 2);
    b.add(s4, s4, t6);
    b.sub(s2, s2, t5);
    b.j(inner);
    b.bind(row_done);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v4, 0);
    b.vfredosum_vs(v5, v0, v4);
    b.vfmv_f_s(FReg::a(0), v5);
    b.fsw(FReg::a(0), 0, s6);
    b.addi(s6, s6, 4);
    b.addi(s5, s5, 4);
    b.mv(s1, t2);
    b.addi(s0, s0, 1);
    b.j(row_loop);
    b.bind(done);
    b.ebreak();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_isa::Instr;

    fn dummy_layout() -> ProblemLayout {
        ProblemLayout {
            rows_base: 0x100,
            cols_base: 0x200,
            vals_base: 0x300,
            v_base: 0,
            x_idx_base: 0x400,
            x_vals_base: 0x500,
            y_base: 0x600,
            smash_l0_base: 0,
            smash_l1_base: 0,
            num_rows: 8,
            num_cols: 8,
            m_nnz: 16,
            x_nnz: 4,
        }
    }

    #[test]
    fn baseline_is_scalar_merge() {
        let p = spmspv_baseline(&dummy_layout());
        assert!(!p.instrs().iter().any(|i| i.is_vector()));
        // Has both comparison branches of the merge.
        let branches = p.instrs().iter().filter(|i| matches!(i, Instr::Branch { .. })).count();
        assert!(branches >= 4);
    }

    #[test]
    fn v1_reads_all_three_windows() {
        let p = spmspv_hht_v1(&dummy_layout());
        // li of each window address must appear.
        for w in [window::PRIMARY, window::SECONDARY, window::COUNTS] {
            let addr = (map::HHT_BUF_BASE + w) as i32;
            let hi = addr >> 12; // lui chunk
            let found = p.instrs().iter().any(
                |i| matches!(i, Instr::Lui { imm20, .. } if (*imm20 == hi || *imm20 == hi + 1)),
            );
            assert!(found, "window {w:#x} address not materialized");
        }
    }

    #[test]
    fn v2_does_not_touch_cols_array() {
        let p = spmspv_hht_v2(&dummy_layout());
        // 0x200 (cols base) appears only inside the MMR programming stores,
        // never as a load base. Check: no lw with an li of 0x200 feeding a
        // non-sw use is hard statically; instead check there is no vsll
        // (no index scaling) and no gather.
        assert!(!p.instrs().iter().any(|i| matches!(i, Instr::Vluxei32 { .. })));
        assert!(!p.instrs().iter().any(|i| matches!(i, Instr::VsllVI { .. })));
    }
}
