//! SpMV over a SMASH-encoded matrix with HHT assistance (§6).
//!
//! The accelerator walks the bitmap hierarchy and supplies gathered vector
//! values plus a per-row non-zero count; the CPU streams the packed value
//! array unit-stride. There is no CSR metadata at all — the row structure
//! is recovered by the HHT from the bitmaps.

use super::emit_hht_setup;
use crate::layout::ProblemLayout;
use hht_accel::hht::window;
use hht_accel::Mode;
use hht_isa::builder::KernelBuilder;
use hht_isa::{FReg, Program, Reg, VReg};
use hht_mem::map;

/// HHT-assisted SMASH SpMV kernel.
pub fn smash_spmv_hht(l: &ProblemLayout) -> Program {
    let mut b = KernelBuilder::new(0);
    let (a2, a5, a6, a7) = (Reg::a(2), Reg::a(5), Reg::a(6), Reg::a(7));
    let (s0, s4, s6, s7) = (Reg::s(0), Reg::s(4), Reg::s(6), Reg::s(7));
    let (t0, t2, t5, t6) = (Reg::t(0), Reg::t(2), Reg::t(5), Reg::t(6));
    let (v0, v1, v3, v4, v5) =
        (VReg::new(0), VReg::new(1), VReg::new(3), VReg::new(4), VReg::new(5));
    b.li(a2, l.vals_base as i32);
    b.li(a5, l.num_rows as i32);
    b.li(a7, l.y_base as i32);
    emit_hht_setup(&mut b, l, Mode::Smash);
    b.li(a6, (map::HHT_BUF_BASE + window::PRIMARY) as i32);
    b.li(s7, (map::HHT_BUF_BASE + window::COUNTS) as i32);
    b.li(s0, 0);
    b.mv(s4, a2); // packed vals cursor
    b.mv(s6, a7); // y cursor
    let (t3, t4) = (Reg::t(3), Reg::t(4));
    let row_loop = b.here();
    let done = b.label();
    b.bge(s0, a5, done);
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v0, 0);
    let chunk_loop = b.here();
    b.lw(t2, 0, s7); // chunk header from the bitmap walk
    b.srli(t4, t2, 31); // last-of-row flag
    b.slli(t3, t2, 1); // count
    b.srli(t3, t3, 1);
    let inner = b.here();
    let chunk_done = b.label();
    b.beqz(t3, chunk_done);
    b.vsetvli(t5, t3);
    b.vle32(v1, a6); // gathered v values
    b.vle32(v3, s4); // packed matrix values
    b.vfmacc_vv(v0, v1, v3);
    b.slli(t6, t5, 2);
    b.add(s4, s4, t6);
    b.sub(t3, t3, t5);
    b.j(inner);
    b.bind(chunk_done);
    b.beqz(t4, chunk_loop); // more chunks in this row
    b.vsetvli(t0, Reg::ZERO);
    b.vmv_v_i(v4, 0);
    b.vfredosum_vs(v5, v0, v4);
    b.vfmv_f_s(FReg::a(0), v5);
    b.fsw(FReg::a(0), 0, s6);
    b.addi(s6, s6, 4);
    b.addi(s0, s0, 1);
    b.j(row_loop);
    b.bind(done);
    b.ebreak();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_isa::Instr;

    #[test]
    fn kernel_shape() {
        let l = ProblemLayout {
            rows_base: 0,
            cols_base: 0,
            vals_base: 0x300,
            v_base: 0x400,
            x_idx_base: 0,
            x_vals_base: 0,
            y_base: 0x500,
            smash_l0_base: 0x1000,
            smash_l1_base: 0x1100,
            num_rows: 64,
            num_cols: 64,
            m_nnz: 10,
            x_nnz: 0,
        };
        let p = smash_spmv_hht(&l);
        // No gather, no CSR metadata loads beyond the count window.
        assert!(!p.instrs().iter().any(|i| matches!(i, Instr::Vluxei32 { .. })));
        assert!(p.instrs().iter().any(|i| matches!(i, Instr::Ebreak)));
    }
}
