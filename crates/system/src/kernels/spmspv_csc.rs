//! Work-efficient CSC SpMSpV baseline (the algorithm class of the paper's
//! related work [43], Azad & Buluç): instead of merging per row, iterate
//! only the non-zero entries of `x` and scatter each column's
//! contribution:
//!
//! ```text
//! for (j, xv) in x.nonzeros():        // x_nnz outer steps
//!     for k in col_ptr[j]..col_ptr[j+1]:
//!         y[row_idx[k]] += vals[k] * xv   // indirect *store*
//! ```
//!
//! Work is `O(x_nnz + touched_nnz)` instead of the row-merge baseline's
//! `O(rows * x_nnz + m_nnz)`, at the price of indirect scatter stores.
//! `figures -- ablate-baseline` compares both against the HHT variants:
//! the choice of CPU baseline is the main free variable behind the Fig. 5
//! magnitude difference documented in EXPERIMENTS.md.

use crate::layout::{ImageBuilder, ProblemLayout};
use hht_isa::builder::KernelBuilder;
use hht_isa::{FReg, Program, Reg};
use hht_mem::Sram;
use hht_sparse::{CscMatrix, SparseFormat, SparseVector};

/// Lay out a CSC SpMSpV problem. Field reuse in [`ProblemLayout`]:
/// `rows_base` = CSC column pointers, `cols_base` = CSC row indices,
/// `vals_base` = CSC values.
pub fn layout_spmspv_csc(sram: &mut Sram, m: &CscMatrix, x: &SparseVector) -> ProblemLayout {
    assert_eq!(m.cols(), x.len(), "matrix/vector width mismatch");
    let mut b = ImageBuilder::new(sram, 0x100);
    let col_ptr_base = b.place_words(m.col_ptr());
    let row_idx_base = b.place_words(m.row_indices());
    let vals_base = b.place_f32s(m.values());
    let x_idx_base = b.place_words(x.indices());
    let x_vals_base = b.place_f32s(x.values());
    let y_base = b.place_output(m.rows());
    ProblemLayout {
        rows_base: col_ptr_base,
        cols_base: row_idx_base,
        vals_base,
        v_base: 0,
        x_idx_base,
        x_vals_base,
        y_base,
        smash_l0_base: 0,
        smash_l1_base: 0,
        num_rows: m.rows() as u32,
        num_cols: m.cols() as u32,
        m_nnz: m.nnz() as u32,
        x_nnz: x.nnz() as u32,
    }
}

/// The column-scatter SpMSpV kernel (scalar; the scatter prevents
/// straightforward vectorization without `vsuxei32`, which the paper's
/// core also lacks).
pub fn spmspv_csc_baseline(l: &ProblemLayout) -> Program {
    let (a0, a1, a2, a3, a4, a7) =
        (Reg::a(0), Reg::a(1), Reg::a(2), Reg::a(3), Reg::a(4), Reg::a(7));
    let (s0, s1, s2, s3) = (Reg::s(0), Reg::s(1), Reg::s(2), Reg::s(3));
    let (t0, t1, t2, t3) = (Reg::t(0), Reg::t(1), Reg::t(2), Reg::t(3));
    let (fa0, fa1, fa2) = (FReg::a(0), FReg::a(1), FReg::a(2));
    let mut b = KernelBuilder::new(0);
    b.li(a0, l.rows_base as i32); // CSC col_ptr
    b.li(a1, l.cols_base as i32); // CSC row_idx
    b.li(a2, l.vals_base as i32); // CSC vals
    b.li(a3, l.x_idx_base as i32);
    b.li(a4, l.x_vals_base as i32);
    b.li(a7, l.y_base as i32);
    b.li(s0, l.x_nnz as i32); // outer counter
    let done = b.label();
    b.beqz(s0, done);
    let outer = b.here();
    b.name("outer");
    // j = *x_idx++, xv = *x_vals++
    b.lw(t0, 0, a3);
    b.flw(fa0, 0, a4);
    b.addi(a3, a3, 4);
    b.addi(a4, a4, 4);
    // k = col_ptr[j], end = col_ptr[j+1]
    b.slli(t1, t0, 2);
    b.add(t1, a0, t1);
    b.lw(s1, 0, t1);
    b.lw(s2, 4, t1);
    // cursor into row_idx / vals
    b.slli(t2, s1, 2);
    b.add(s3, a1, t2); // row_idx cursor
    b.add(t3, a2, t2); // vals cursor
    let col_done = b.label();
    b.bge(s1, s2, col_done);
    let inner = b.here();
    b.name("scatter");
    b.lw(t2, 0, s3); // r = row_idx[k]
    b.flw(fa1, 0, t3); // A[r][j]
    b.slli(t2, t2, 2);
    b.add(t2, a7, t2);
    b.flw(fa2, 0, t2); // y[r]
    b.fmadd_s(fa2, fa1, fa0, fa2);
    b.fsw(fa2, 0, t2); // y[r] += A*xv  (the indirect store)
    b.addi(s3, s3, 4);
    b.addi(t3, t3, 4);
    b.addi(s1, s1, 1);
    b.blt(s1, s2, inner);
    b.bind(col_done);
    b.addi(s0, s0, -1);
    b.bnez(s0, outer);
    b.bind(done);
    b.ebreak();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_isa::Instr;

    #[test]
    fn kernel_has_indirect_store_and_no_vector_ops() {
        let l = ProblemLayout {
            rows_base: 0x100,
            cols_base: 0x200,
            vals_base: 0x300,
            v_base: 0,
            x_idx_base: 0x400,
            x_vals_base: 0x500,
            y_base: 0x600,
            smash_l0_base: 0,
            smash_l1_base: 0,
            num_rows: 8,
            num_cols: 8,
            m_nnz: 12,
            x_nnz: 4,
        };
        let p = spmspv_csc_baseline(&l);
        assert!(!p.instrs().iter().any(|i| i.is_vector()));
        assert!(p.instrs().iter().any(|i| matches!(i, Instr::Fsw { .. })));
        assert!(p.symbol("outer").is_some());
    }
}
