//! The pre-fabric single-tile cycle loop, kept verbatim as the
//! differential reference for the port-based [`Fabric`](crate::fabric).
//!
//! [`LegacySystem`] owns one [`Core`], one [`Hht`] and one private
//! single-ported [`Sram`] and couples them with the original lock-step
//! loop (CPU steps first each cycle, then the HHT). It is not used by the
//! runners or the experiment drivers — [`crate::system::System`] wraps a
//! 1-tile fabric instead — but `tests/determinism.rs` proves the 1-tile
//! fabric cycle-, stats- and event-identical to this machine, which pins
//! the refactor to the seed behaviour.

use crate::config::SystemConfig;
use crate::system::{FaultSummary, SystemStats};
use hht_accel::{Hht, Wake};
use hht_fault::{FaultKind, FaultPlan};
use hht_isa::Program;
use hht_mem::Sram;
use hht_obs::{merge_events, Event, EventBus, EventKind, Track};
use hht_sim::{Core, RunError};
use hht_sparse::DenseVector;

/// A CPU + HHT + private SRAM instance executing one program — the
/// pre-fabric machine.
pub struct LegacySystem {
    core: Core,
    hht: Hht,
    sram: Sram,
    cycle: u64,
    max_cycles: u64,
    cycle_skip: bool,
    /// Pending fault schedule (`None` once drained or when injection is
    /// disabled). The next pending cycle bounds every fast-forward so no
    /// injection point is skipped over.
    fault_plan: Option<FaultPlan>,
    faults_injected: u64,
    /// The system's own event sink (fault-injection timeline).
    obs: Option<Box<EventBus>>,
}

impl LegacySystem {
    /// Build a system: the SRAM must already hold the problem image. When
    /// `cfg.trace` asks for it, event buses are installed on the core, the
    /// HHT and the SRAM port (sinks never change simulated timing).
    pub fn new(cfg: &SystemConfig, program: Program, mut sram: Sram) -> Self {
        let mut core = Core::new(cfg.core, program);
        let mut hht = Hht::new(cfg.hht);
        let mut obs = None;
        if cfg.trace.events {
            let bus = || EventBus::with_sampling(cfg.trace.event_capacity, cfg.trace.sample_every);
            core.set_event_bus(bus());
            hht.set_event_bus(bus());
            sram.set_event_bus(bus());
            obs = Some(Box::new(bus()));
        }
        if cfg.trace.instr_trace {
            core.enable_trace_with_capacity(cfg.trace.instr_trace_capacity);
        }
        let plan = FaultPlan::from_seed(cfg.fault, sram.size());
        LegacySystem {
            core,
            hht,
            sram,
            cycle: 0,
            max_cycles: cfg.core.max_cycles,
            cycle_skip: cfg.cycle_skip,
            fault_plan: (!plan.is_empty()).then_some(plan),
            faults_injected: 0,
            obs,
        }
    }

    /// Install an explicit fault schedule (replacing any seed-derived one).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = (!plan.is_empty()).then_some(plan);
    }

    /// Advance one cycle: CPU first (port priority), then the HHT.
    pub fn step(&mut self) {
        self.core.step(self.cycle, &mut self.sram, &mut self.hht);
        self.hht.step(self.cycle, &mut self.sram);
        self.cycle += 1;
    }

    /// Apply every fault-plan event due at or before the current cycle.
    /// Runs at the top of the run loop, so an injection at cycle `t`
    /// perturbs state *before* cycle `t` executes — in both the per-cycle
    /// and the cycle-skipping loop (fast-forward never jumps past the next
    /// pending injection cycle).
    fn inject_due_faults(&mut self) {
        let Some(plan) = self.fault_plan.as_mut() else {
            return;
        };
        let now = self.cycle;
        let due: Vec<FaultKind> = plan.take_due(now).iter().map(|e| e.kind).collect();
        if plan.remaining() == 0 {
            self.fault_plan = None;
        }
        for kind in due {
            self.apply_fault(now, kind);
        }
    }

    /// Inject one fault into the machine and record it.
    fn apply_fault(&mut self, now: u64, kind: FaultKind) {
        let applied = match kind {
            FaultKind::SramBitFlip { addr, bit } => self.sram.corrupt_word(addr, bit),
            FaultKind::DropResponse => self.hht.drop_response(),
            FaultKind::DelayResponse { cycles } => {
                self.hht.delay_responses(now, cycles);
                true
            }
            FaultKind::EngineStall { cycles } => {
                self.hht.freeze_engine(now, cycles);
                true
            }
            FaultKind::BufferCorrupt { bit } => self.hht.corrupt_buffer(now, bit),
            FaultKind::MmrStickyError => {
                self.hht.set_sticky_error();
                true
            }
            // The legacy single-tile machine has no fault domains to
            // quarantine; a kill is the sticky-error failure it models.
            FaultKind::TileKill => {
                self.hht.set_sticky_error();
                true
            }
        };
        if applied {
            self.faults_injected += 1;
            if let Some(obs) = self.obs.as_mut() {
                obs.emit(now, Track::Fault, EventKind::FaultInject { what: kind.label() });
            }
        }
    }

    /// Run to `ebreak`. Returns the collected statistics.
    ///
    /// Errors on guest faults and on watchdog expiry
    /// ([`RunError::Watchdog`]), so a deadlocked configuration fails one
    /// experiment cell instead of aborting a whole parallel sweep.
    ///
    /// With `cfg.cycle_skip` (the default) the loop is event-driven: after
    /// each stepped cycle it asks every component for its next wake cycle
    /// and fast-forwards `self.cycle` over spans where all of them are
    /// provably inert, charging the span to the same counters the per-cycle
    /// loop would have recorded. Cycle counts, stats and obs event streams
    /// are bit-identical between the two modes (see `tests/determinism.rs`).
    pub fn run(&mut self) -> Result<SystemStats, RunError> {
        while !self.core.halted() {
            self.inject_due_faults();
            self.step();
            if self.cycle >= self.max_cycles {
                return Err(RunError::Watchdog(self.max_cycles));
            }
            if self.cycle_skip {
                self.fast_forward();
                // A skipped span may land exactly on the watchdog limit (a
                // detected deadlock jumps straight there); expire before
                // stepping a cycle the per-cycle loop never executes.
                if self.cycle >= self.max_cycles {
                    return Err(RunError::Watchdog(self.max_cycles));
                }
            }
        }
        if let Some(e) = self.core.error() {
            return Err(e);
        }
        Ok(self.stats())
    }

    /// Advance `self.cycle` to the earliest cycle at which any component can
    /// act. Skipped spans are exactly the cycles the per-cycle loop would
    /// have burned ticking inert components:
    ///
    /// - the core returns from `step` immediately while `now < busy_until`;
    ///   its two runnable retry states — parked on an empty stream window,
    ///   or losing SRAM-port arbitration to an in-flight HHT burst — fail
    ///   provably until the engine pushes (resp. the port frees), and their
    ///   per-cycle charges are replayed in bulk by `Core::skip_hht_wait` /
    ///   `Core::skip_port_wait`;
    /// - the HHT charges `busy_cycles` per cycle while an engine waits on a
    ///   memory read, plus its state's retry counters (`stall_out_full`
    ///   while output-blocked, `port_conflicts` + an SRAM conflict while
    ///   port-starved) — replayed in bulk by `Hht::skip_idle`;
    /// - obs event *transitions* only ever fire on stepped cycles (a span
    ///   with no state change emits nothing), and the per-retry-cycle SRAM
    ///   conflict events are replayed with their original stamps, so event
    ///   streams stay bit-identical.
    fn fast_forward(&mut self) {
        let now = self.cycle;
        let Some(core_at) = self.core.next_event(now) else {
            return; // halted: the run loop exits next check
        };
        // Classify the core before the (costlier) HHT hint: busy until a
        // known cycle, runnable (nothing to skip), or runnable-but-blocked
        // on a provably failing retry.
        let mut window_read = None;
        let mut port_free = None;
        if core_at <= now {
            if let Some(addr) = self.core.pending_hht_read(now) {
                if !self.hht.window_read_would_stall(addr, now) {
                    return; // the pop succeeds this cycle
                }
                window_read = Some(addr);
            } else {
                match self.sram.next_event(now) {
                    Some(free_at) if self.core.pending_port_access(now) => {
                        if free_at <= now + 1 {
                            return; // a 1-cycle skip costs more than a step
                        }
                        port_free = Some(free_at);
                    }
                    _ => return, // the core acts this cycle
                }
            }
        } else if core_at <= now + 1 {
            // The core resumes next cycle, capping any span at 1 — not
            // worth the hint computations below.
            return;
        }
        let hht_wake = self.hht.next_event(now);
        // When the engine can next change state, or `None` when only a CPU
        // action (popping a full FIFO) — or nothing at all — can unblock it.
        let hht_bound = match hht_wake {
            Wake::At(t) => Some(t),
            // Wants the port: issues the moment it frees.
            Wake::NeedsPort { .. } => Some(self.sram.next_event(now).unwrap_or(now)),
            Wake::OutputBlocked | Wake::Never => None,
        };
        let target = if let Some(free_at) = port_free {
            // Core losing arbitration: the holder is the engine's in-flight
            // burst, so core and engine both resume at the port's free
            // cycle.
            hht_bound.map_or(free_at, |t| t.min(free_at))
        } else if let Some(addr) = window_read {
            // Core parked on an empty window: only the engine can unpark
            // it; every cycle until then is one failing retry on the core
            // side and one idle cycle on the engine side. With no engine
            // wake bound this is a true deadlock (the parked core can never
            // pop the FIFO an output-blocked engine waits on) — jump
            // straight to the watchdog limit, both retry counters replayed.
            let mut t = hht_bound.unwrap_or(self.max_cycles);
            // A delayed response (fault) can make a window with buffered
            // data stall: the pop succeeds the moment the delay expires,
            // possibly before any engine wake.
            if let Some(ready) = self.hht.window_ready_at(addr, now) {
                t = t.min(ready);
            }
            // The timeout protocol fires mid-wait: stop the span at the
            // cycle whose stalled retry trips it, so the timeout path
            // executes on a stepped cycle exactly as in the legacy loop.
            if let Some(bound) = self.core.hht_timeout_bound(now) {
                t = t.min(bound);
            }
            t
        } else {
            // Core busy until `core_at`; the engine may wake earlier.
            hht_bound.map_or(core_at, |t| t.min(core_at))
        };
        // Never jump past a pending fault injection: the run loop applies
        // it before stepping that cycle, identically in both modes.
        let target = match self.fault_plan.as_ref().and_then(FaultPlan::next_cycle) {
            Some(fault_at) => target.min(fault_at),
            None => target,
        };
        if target <= now + 1 {
            return; // nothing to skip (or a 1-cycle span: cheaper to step)
        }
        let span = (target - now).min(self.max_cycles.saturating_sub(now));
        self.hht.skip_idle(now, span, &mut self.sram);
        if let Some(addr) = window_read {
            self.core.skip_hht_wait(now, span, addr);
            self.hht.skip_stalled_reads(span);
        } else if port_free.is_some() {
            self.core.skip_port_wait(now, span, &mut self.sram);
        }
        self.cycle = now + span;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            cycles: self.cycle,
            core: self.core.stats(),
            hht: self.hht.stats(),
            sram: self.sram.stats(),
            faults: FaultSummary { injected: self.faults_injected, ..FaultSummary::default() },
        }
    }

    /// Read the output vector from SRAM after a run.
    pub fn read_output(&self, y_base: u32, n: usize) -> DenseVector {
        DenseVector::from(self.sram.read_f32s(y_base, n))
    }

    /// Borrow the memory (for test inspection).
    pub fn sram(&self) -> &Sram {
        &self.sram
    }

    /// Borrow the core (for test inspection).
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Drain every component's event stream into one cycle-ordered
    /// timeline (empty when the system was built without event sinks).
    pub fn take_events(&mut self) -> Vec<Event> {
        let system = self.obs.as_mut().map(|b| b.take_events()).unwrap_or_default();
        merge_events(vec![
            self.core.take_events(),
            self.hht.take_events(),
            self.sram.take_events(),
            system,
        ])
    }

    /// Drain the event streams and render them as Chrome trace-event JSON.
    pub fn chrome_trace_json(&mut self) -> String {
        hht_obs::chrome::chrome_trace_json(&self.take_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hht_isa::asm::assemble;

    #[test]
    fn trivial_program_runs() {
        let cfg = SystemConfig::paper_default();
        let sram = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
        let p = assemble("li a0, 1\nebreak").unwrap();
        let mut sys = LegacySystem::new(&cfg, p, sram);
        let stats = sys.run().unwrap();
        assert!(stats.cycles >= 2);
        assert_eq!(stats.core.instructions, 2);
    }
}
