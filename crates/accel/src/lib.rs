//! The Hardware Helper Thread (HHT) — the paper's contribution (§3).
//!
//! The HHT is a memory-side accelerator that performs the *metadata* index
//! computations of sparse matrix-vector kernels: it walks the CSR `cols`
//! array, computes `V_Base + s*k` addresses, fetches the needed vector
//! elements and assembles them into CPU-side buffers that the primary core
//! drains through a fixed memory-mapped window.
//!
//! Organization mirrors §3:
//!
//! - [`mmr`] — the memory-mapped configuration registers the CPU programs
//!   (`M_Num_Rows`, `M_Rows_Base`, `M_Cols_Base`, `V_Base`, `ElementSizes`,
//!   `Start`, …).
//! - [`fifo`] — the N vector-sized CPU-side buffers, modeled as a bounded
//!   element FIFO with buffer-granular fill accounting.
//! - [`engine`] — the back-end (BE) engines: [`engine::GatherEngine`] for
//!   SpMV, [`engine::SpMSpVEngine`] for both SpMSpV variants (§5.1), and
//!   [`engine::SmashEngine`] for the hierarchical-bitmap format of §6.
//! - [`hht`] — the front-end (FE): MMIO decode, buffer windows, control
//!   unit gluing FE and BE together, statistics.
//!
//! The accelerator is stepped once per cycle by `hht-system`, *after* the
//! CPU's step so the CPU has SRAM-port priority (the HHT is "memory-side").

pub mod engine;
pub mod fifo;
pub mod hht;
pub mod mmr;
pub mod programmable;

pub use engine::Wake;
pub use fifo::ElemFifo;
pub use hht::{Hht, HhtParams, HhtStats};
pub use mmr::{EngineConfig, Mode};
