//! The HHT's memory-mapped configuration registers (§3.1).
//!
//! The CPU programs the accelerator by storing to these registers (word
//! offsets from [`hht_mem::map::HHT_MMR_BASE`]); writing 1 to
//! [`reg::START`] latches the configuration and starts the back-end.

use serde::{Deserialize, Serialize};

/// Word offsets of the configuration registers inside the MMR window.
pub mod reg {
    /// `M_Num_Rows`: number of rows of the sparse matrix.
    pub const M_NUM_ROWS: u32 = 0x00;
    /// `M_Rows_Base`: base address of the CSR rows (row-pointer) array.
    pub const M_ROWS_BASE: u32 = 0x04;
    /// `M_Cols_Base`: base address of the CSR cols array.
    pub const M_COLS_BASE: u32 = 0x08;
    /// Base address of the CSR vals array (used by SpMSpV variant-1, which
    /// supplies aligned *matrix* values too).
    pub const M_VALS_BASE: u32 = 0x0C;
    /// `V_Base`: base address of the dense vector (SpMV mode).
    pub const V_BASE: u32 = 0x10;
    /// Base address of the sparse vector's index array (SpMSpV modes).
    pub const V_IDX_BASE: u32 = 0x14;
    /// Base address of the sparse vector's value array (SpMSpV modes).
    pub const V_VALS_BASE: u32 = 0x18;
    /// Number of non-zeros of the sparse vector (SpMSpV modes).
    pub const V_NNZ: u32 = 0x1C;
    /// Total number of matrix non-zeros (drives termination).
    pub const M_NNZ: u32 = 0x20;
    /// `ElementSizes`: element size in bytes for all arrays (only 4 is
    /// accepted — Table 1: SEW = 32 bit).
    pub const ELEMENT_SIZES: u32 = 0x24;
    /// Operating mode, see [`super::Mode`].
    pub const MODE: u32 = 0x28;
    /// `Start`: "This bit is set last to trigger the hardware operation."
    pub const START: u32 = 0x2C;
    /// Read-only status: bit 0 = back-end done, bit 1 = sticky fault
    /// error (buffer parity error or rejected START configuration).
    pub const STATUS: u32 = 0x30;
}

/// Operating mode programmed into [`reg::MODE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// SpMV indexed gather: supply `v[cols[k]]` for every matrix non-zero.
    SpMV = 0,
    /// SpMSpV variant-1: supply aligned (matrix value, vector value) pairs
    /// plus a per-row match count (§5.1).
    SpMSpVAligned = 1,
    /// SpMSpV variant-2: supply the vector value or zero for every matrix
    /// non-zero (§5.1).
    SpMSpVValueOrZero = 2,
    /// SpMV over a SMASH hierarchical-bitmap matrix (§6): supply gathered
    /// vector values plus per-row non-zero counts recovered from the
    /// bitmap hierarchy.
    Smash = 3,
    /// SpMV gather executed by the *programmable* back-end of §7 — a tiny
    /// helper core running a gather microprogram instead of the FSM.
    ProgrammableSpMV = 4,
}

impl Mode {
    /// Decode a register value.
    pub fn from_u32(v: u32) -> Option<Mode> {
        Some(match v {
            0 => Mode::SpMV,
            1 => Mode::SpMSpVAligned,
            2 => Mode::SpMSpVValueOrZero,
            3 => Mode::Smash,
            4 => Mode::ProgrammableSpMV,
            _ => return None,
        })
    }
}

/// The latched configuration handed to a back-end engine at START.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of matrix rows.
    pub num_rows: u32,
    /// CSR row-pointer array base address.
    pub rows_base: u32,
    /// CSR column-index array base address.
    pub cols_base: u32,
    /// CSR value array base address.
    pub vals_base: u32,
    /// Dense vector base (SpMV) — for SMASH mode this is also the dense
    /// vector base.
    pub v_base: u32,
    /// Sparse vector index array base (SpMSpV).
    pub v_idx_base: u32,
    /// Sparse vector value array base (SpMSpV).
    pub v_vals_base: u32,
    /// Sparse vector non-zero count (SpMSpV).
    pub v_nnz: u32,
    /// Matrix non-zero count.
    pub m_nnz: u32,
    /// Element size in bytes (always 4 in this model).
    pub elem_size: u32,
    /// Number of matrix columns (SMASH mode needs it to map flat bit
    /// positions back to column indices; it is packed into the upper half
    /// of the `ELEMENT_SIZES` register).
    pub num_cols: u32,
    /// Operating mode.
    pub mode: Mode,
}

/// Raw register file; the FE decodes it into an [`EngineConfig`] at START.
#[derive(Debug, Clone, Default)]
pub struct RegisterFile {
    values: [u32; 16],
}

impl RegisterFile {
    /// Store to a register by byte offset. Unknown offsets are ignored
    /// (writes to reserved space), matching typical MMIO behaviour.
    pub fn write(&mut self, offset: u32, value: u32) {
        let idx = (offset / 4) as usize;
        if idx < self.values.len() {
            self.values[idx] = value;
        }
    }

    /// Read a register by byte offset (reserved space reads 0).
    pub fn read(&self, offset: u32) -> u32 {
        let idx = (offset / 4) as usize;
        self.values.get(idx).copied().unwrap_or(0)
    }

    /// Decode into an [`EngineConfig`]. Returns `None` if MODE is invalid
    /// or the element size is unsupported.
    pub fn decode(&self) -> Option<EngineConfig> {
        let mode = Mode::from_u32(self.read(reg::MODE))?;
        let es = self.read(reg::ELEMENT_SIZES);
        let elem_size = es & 0xffff;
        let num_cols = es >> 16;
        if elem_size != 4 {
            return None;
        }
        Some(EngineConfig {
            num_rows: self.read(reg::M_NUM_ROWS),
            rows_base: self.read(reg::M_ROWS_BASE),
            cols_base: self.read(reg::M_COLS_BASE),
            vals_base: self.read(reg::M_VALS_BASE),
            v_base: self.read(reg::V_BASE),
            v_idx_base: self.read(reg::V_IDX_BASE),
            v_vals_base: self.read(reg::V_VALS_BASE),
            v_nnz: self.read(reg::V_NNZ),
            m_nnz: self.read(reg::M_NNZ),
            elem_size,
            num_cols,
            mode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut rf = RegisterFile::default();
        rf.write(reg::M_NUM_ROWS, 512);
        rf.write(reg::V_BASE, 0x1000);
        assert_eq!(rf.read(reg::M_NUM_ROWS), 512);
        assert_eq!(rf.read(reg::V_BASE), 0x1000);
        assert_eq!(rf.read(0x38), 0); // reserved
        rf.write(0x100, 7); // far out of range: ignored
        assert_eq!(rf.read(0x100), 0);
    }

    #[test]
    fn decode_requires_valid_mode_and_size() {
        let mut rf = RegisterFile::default();
        rf.write(reg::ELEMENT_SIZES, 4);
        rf.write(reg::MODE, 0);
        assert!(rf.decode().is_some());
        rf.write(reg::MODE, 9);
        assert!(rf.decode().is_none());
        rf.write(reg::MODE, 0);
        rf.write(reg::ELEMENT_SIZES, 8);
        assert!(rf.decode().is_none());
    }

    #[test]
    fn decode_unpacks_cols_from_element_sizes() {
        let mut rf = RegisterFile::default();
        rf.write(reg::ELEMENT_SIZES, (512 << 16) | 4);
        rf.write(reg::MODE, 3);
        let cfg = rf.decode().unwrap();
        assert_eq!(cfg.num_cols, 512);
        assert_eq!(cfg.elem_size, 4);
        assert_eq!(cfg.mode, Mode::Smash);
    }

    #[test]
    fn mode_decoding() {
        assert_eq!(Mode::from_u32(0), Some(Mode::SpMV));
        assert_eq!(Mode::from_u32(1), Some(Mode::SpMSpVAligned));
        assert_eq!(Mode::from_u32(2), Some(Mode::SpMSpVValueOrZero));
        assert_eq!(Mode::from_u32(3), Some(Mode::Smash));
        assert_eq!(Mode::from_u32(4), Some(Mode::ProgrammableSpMV));
        assert_eq!(Mode::from_u32(5), None);
    }
}
