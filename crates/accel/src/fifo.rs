//! The CPU-side buffers (§3.1).
//!
//! The FE is "implemented with N vector-sized buffers where N is a
//! design-time parameter"; the CPU sees a streaming FIFO at a fixed
//! address, and the control unit tracks read/write buffers and empty/full
//! conditions. We model the N buffers as one bounded element FIFO of
//! capacity `N * BLEN` — pops are per element (one load beat each), and the
//! *buffer* structure shows up in the control unit's throttling: the BE is
//! allowed to launch work only while there is free space, so capacity
//! (N=1 vs N=2) is exactly the double-buffering head-room of §5.1.

use std::collections::VecDeque;

/// A bounded FIFO of 32-bit elements (value bit-patterns).
#[derive(Debug, Clone)]
pub struct ElemFifo {
    cap: usize,
    q: VecDeque<u32>,
    /// Total elements ever pushed (for statistics).
    pushed: u64,
}

impl ElemFifo {
    /// A FIFO holding at most `cap` elements.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "FIFO capacity must be positive");
        ElemFifo { cap, q: VecDeque::with_capacity(cap), pushed: 0 }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Elements currently buffered.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// True when no free space remains.
    pub fn is_full(&self) -> bool {
        self.q.len() == self.cap
    }

    /// Free element slots.
    pub fn free(&self) -> usize {
        self.cap - self.q.len()
    }

    /// Push one element. Panics when full — the control unit must throttle
    /// the BE before this happens; overflowing is a model bug.
    pub fn push(&mut self, v: u32) {
        assert!(!self.is_full(), "FIFO overflow: control unit failed to throttle");
        self.q.push_back(v);
        self.pushed += 1;
    }

    /// Pop one element (one CPU load beat), `None` when empty (CPU stalls).
    pub fn pop(&mut self) -> Option<u32> {
        self.q.pop_front()
    }

    /// Flip bit `bit % 32` of the head element in place (fault injection:
    /// a buffer soft error). Returns `false` when the FIFO is empty.
    pub fn corrupt_head(&mut self, bit: u8) -> bool {
        match self.q.front_mut() {
            Some(v) => {
                *v ^= 1 << (bit % 32);
                true
            }
            None => false,
        }
    }

    /// Total elements ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Drop all contents (used when re-starting the engine).
    pub fn clear(&mut self) {
        self.q.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut f = ElemFifo::new(4);
        f.push(1);
        f.push(2);
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn capacity_accounting() {
        let mut f = ElemFifo::new(2);
        assert_eq!(f.free(), 2);
        f.push(1);
        assert_eq!(f.free(), 1);
        f.push(2);
        assert!(f.is_full());
        assert_eq!(f.free(), 0);
        f.pop();
        assert_eq!(f.free(), 1);
        assert_eq!(f.total_pushed(), 2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut f = ElemFifo::new(1);
        f.push(1);
        f.push(2);
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut f = ElemFifo::new(2);
        f.push(1);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.total_pushed(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        ElemFifo::new(0);
    }
}
