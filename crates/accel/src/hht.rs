//! The HHT front-end and control unit (§3.1).
//!
//! The FE owns the CPU-side buffers and the MMR file, decodes CPU loads and
//! stores in the HHT's MMIO windows, and steps the back-end engine each
//! cycle. The control unit behaviour — tracking read/write buffers,
//! stalling CPU loads when no data is ready, throttling the BE when buffers
//! are full — lives in the FIFO bounds plus the stall results returned to
//! the core.

use crate::engine::{
    Engine, EngineStats, GatherEngine, OutputLevels, Outputs, SmashEngine, SpMSpVEngine,
    SpMSpVVariant, Wake,
};
use crate::fifo::ElemFifo;
use crate::mmr::{reg, Mode, RegisterFile};
use hht_mem::map;
use hht_mem::mmio::{MmioDevice, MmioReadResult};
use hht_mem::sram::Requester;
use hht_mem::MemoryPort;
use hht_obs::{Event, EventBus, EventKind, StallCause, Track};
use serde::{Deserialize, Serialize};

/// Byte offsets of the stream windows inside the HHT buffer region.
pub mod window {
    /// Primary stream (vector values) pop address.
    pub const PRIMARY: u32 = 0x000;
    /// Secondary stream (aligned matrix values, variant-1) pop address.
    pub const SECONDARY: u32 = 0x400;
    /// Per-row count stream pop address (variant-1 and SMASH).
    pub const COUNTS: u32 = 0x800;
}

/// Design-time parameters of the accelerator (Table 1: N = 2 buffers,
/// buffer size 32 B → BLEN = 8 32-bit elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HhtParams {
    /// Number of CPU-side buffers N (≥ 1; N ≥ 2 enables prefetch-ahead).
    pub num_buffers: usize,
    /// Buffer length in 32-bit elements.
    pub blen: usize,
}

impl Default for HhtParams {
    fn default() -> Self {
        HhtParams { num_buffers: 2, blen: 8 }
    }
}

impl HhtParams {
    /// Total element capacity of the CPU-side buffering.
    pub fn capacity(&self) -> usize {
        self.num_buffers * self.blen
    }
}

/// Counters the evaluation section reads out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HhtStats {
    /// CPU load attempts on a stream window that had to stall (each is one
    /// stalled CPU cycle, since the core retries every cycle) — the
    /// "cycles the CPU is waiting for HHT" counter of §4.
    pub cpu_stall_reads: u64,
    /// Elements delivered to the CPU across all streams.
    pub elements_delivered: u64,
    /// Back-end statistics.
    pub engine: EngineStats,
    /// Cycles the back-end was stepped while running.
    pub busy_cycles: u64,
    /// Buffer parity errors detected (each latches the sticky error bit).
    pub parity_errors: u64,
    /// START doorbells rejected because the MMR file decoded to an invalid
    /// configuration (each latches the sticky error bit).
    pub decode_errors: u64,
}

/// The Hardware Helper Thread.
pub struct Hht {
    params: HhtParams,
    regs: RegisterFile,
    primary: ElemFifo,
    secondary: ElemFifo,
    counts: ElemFifo,
    engine: Option<Box<dyn Engine + Send>>,
    engine_done: bool,
    stats: HhtStats,
    obs: Option<Box<EventBus>>,
    /// True while an "engine" busy slice is open on the back-end track.
    run_slice_open: bool,
    /// True while an output-full stall interval is open on the back-end
    /// track.
    out_stall_open: bool,
    /// Last emitted occupancy per stream buffer (primary, secondary,
    /// counts), so the counter tracks only record changes.
    last_levels: [u32; 3],
    /// Memoized engine wake hint. Valid until the engine steps, a stream
    /// pop changes buffer levels, or a new operation starts — the only
    /// state changes the hint depends on. `None` = recompute on demand, so
    /// cycles where the scheduler never asks cost nothing.
    cached_wake: Option<Wake>,
    /// Fault injection: stream-window reads stall while `now <
    /// delay_until` (a delayed HHT response).
    delay_until: u64,
    /// Fault injection: the engine is not stepped while `now <
    /// frozen_until` (an engine stall); busy cycles still accrue.
    frozen_until: u64,
    /// Latched fault-error bit (STATUS bit 1): set by buffer parity errors
    /// and MMR decode failures. While set, all stream-window reads stall —
    /// the device withholds possibly-corrupt data and relies on the
    /// CPU-side timeout protocol to recover.
    sticky_error: bool,
}

impl std::fmt::Debug for Hht {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hht")
            .field("params", &self.params)
            .field("running", &self.engine.is_some())
            .field("done", &self.engine_done)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Hht {
    /// Create an idle HHT with the given buffer provisioning.
    pub fn new(params: HhtParams) -> Self {
        let cap = params.capacity();
        Hht {
            params,
            regs: RegisterFile::default(),
            primary: ElemFifo::new(cap),
            secondary: ElemFifo::new(cap),
            counts: ElemFifo::new(cap.max(4)),
            engine: None,
            engine_done: false,
            stats: HhtStats::default(),
            obs: None,
            run_slice_open: false,
            out_stall_open: false,
            last_levels: [0; 3],
            cached_wake: None,
            delay_until: 0,
            frozen_until: 0,
            sticky_error: false,
        }
    }

    /// Install a structured-event sink for back-end slices, output-full
    /// stalls and buffer-occupancy counters.
    pub fn set_event_bus(&mut self, bus: EventBus) {
        self.obs = Some(Box::new(bus));
    }

    /// Move the collected events out of the HHT's bus (empty when no bus
    /// is installed).
    pub fn take_events(&mut self) -> Vec<Event> {
        match self.obs.as_mut() {
            Some(bus) => bus.take_events(),
            None => Vec::new(),
        }
    }

    /// Events evicted from the HHT's bus by its ring bound.
    pub fn events_dropped(&self) -> u64 {
        self.obs.as_ref().map_or(0, |b| b.dropped())
    }

    /// Design parameters.
    pub fn params(&self) -> HhtParams {
        self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> HhtStats {
        self.stats
    }

    /// True once the programmed operation has delivered everything and the
    /// engine has retired.
    pub fn done(&self) -> bool {
        self.engine_done
            && self.primary.is_empty()
            && self.secondary.is_empty()
            && self.counts.is_empty()
    }

    /// Step the back-end one cycle (called by the system *after* the CPU's
    /// step so the CPU wins SRAM-port arbitration).
    pub fn step(&mut self, now: u64, sram: &mut dyn MemoryPort) {
        if let Some(engine) = self.engine.as_mut() {
            if !self.engine_done {
                if now < self.frozen_until {
                    // Injected engine stall: the cycle is consumed holding
                    // state, no progress is made (and the memoized wake
                    // stays valid — nothing changed).
                    self.stats.busy_cycles += 1;
                    return;
                }
                self.cached_wake = None;
                self.stats.busy_cycles += 1;
                let out_full_before = self.stats.engine.stall_out_full;
                engine.step(
                    now,
                    sram,
                    Outputs {
                        primary: &mut self.primary,
                        secondary: &mut self.secondary,
                        counts: &mut self.counts,
                    },
                    &mut self.stats.engine,
                );
                if engine.done() {
                    self.engine_done = true;
                }
                if self.obs.is_some() {
                    self.emit_step_events(now, out_full_before);
                }
            }
        }
    }

    /// When the back-end can next change state — the cycle-skipping
    /// scheduler's hint. `Never` when no engine is running (or it already
    /// retired); `At(t)` when the engine waits on a memory read;
    /// `NeedsPort` when its next step issues a read and is throttled only
    /// by SRAM-port arbitration (the scheduler resolves this against the
    /// port's free cycle); and `OutputBlocked` when it is throttled by a
    /// full output FIFO and can only re-check once the CPU pops an element.
    #[inline]
    pub fn next_event(&mut self, now: u64) -> Wake {
        let Some(engine) = self.engine.as_ref() else {
            return Wake::Never;
        };
        if self.engine_done {
            return Wake::Never;
        }
        let wake = match self.cached_wake {
            Some(w) => w,
            None => {
                let out = OutputLevels {
                    primary_free: self.primary.free(),
                    secondary_free: self.secondary.free(),
                    counts_free: self.counts.free(),
                };
                let w = engine.wake(now, out);
                self.cached_wake = Some(w);
                w
            }
        };
        // An injected engine stall defers any wake to the thaw cycle; the
        // frozen steps in between only tick `busy_cycles`, which is exactly
        // the `Wake::At` contract.
        let wake = if now < self.frozen_until {
            match wake {
                Wake::At(t) => Wake::At(t.max(self.frozen_until)),
                Wake::Never => Wake::Never,
                _ => Wake::At(self.frozen_until),
            }
        } else {
            wake
        };
        match wake {
            Wake::At(t) => Wake::At(t.max(now)),
            // `done()` should already have latched `engine_done`; act now to
            // latch it rather than trusting the claim.
            Wake::Never => Wake::At(now),
            w => w,
        }
    }

    /// Would a CPU load of `addr` stall at cycle `now`? Non-mutating mirror
    /// of the [`MmioDevice::mmio_read`] stream-window path, used by the
    /// cycle-skipping scheduler to recognise a core parked on a stalled
    /// window (MMR reads never stall).
    #[inline]
    pub fn window_read_would_stall(&self, addr: u32, now: u64) -> bool {
        if !map::is_hht_buffer(addr) {
            return false;
        }
        let off = ((addr - map::HHT_BUF_BASE) & !0x3) & 0xC00;
        let is_window = matches!(off, window::PRIMARY | window::SECONDARY | window::COUNTS);
        if is_window && (self.sticky_error || now < self.delay_until) {
            return true;
        }
        match off {
            window::PRIMARY => self.primary.is_empty(),
            window::SECONDARY => self.secondary.is_empty(),
            window::COUNTS => self.counts.is_empty(),
            _ => false,
        }
    }

    /// When a stalled window read of `addr` will succeed *by time alone*:
    /// `Some(t)` when the stream has data but responses are fault-delayed
    /// until `t`. `None` when the read needs engine progress (empty
    /// stream) or can never succeed (sticky error latched) — the scheduler
    /// falls back to the engine wake / timeout bounds in those cases.
    #[inline]
    pub fn window_ready_at(&self, addr: u32, now: u64) -> Option<u64> {
        if !map::is_hht_buffer(addr) || self.sticky_error || now >= self.delay_until {
            return None;
        }
        let has_data = match ((addr - map::HHT_BUF_BASE) & !0x3) & 0xC00 {
            window::PRIMARY => !self.primary.is_empty(),
            window::SECONDARY => !self.secondary.is_empty(),
            window::COUNTS => !self.counts.is_empty(),
            _ => false,
        };
        has_data.then_some(self.delay_until)
    }

    /// Account for `span` skipped cycles during which the CPU retried a
    /// stream-window load that provably kept stalling (one failed pop
    /// attempt per cycle, mirrored by `Core::skip_hht_wait` on the core
    /// side).
    pub fn skip_stalled_reads(&mut self, span: u64) {
        self.stats.cpu_stall_reads += span;
    }

    /// Account for `span` skipped cycles starting at `now` during which the
    /// engine was provably inert: the per-cycle loop would have charged
    /// `busy_cycles` plus the engine's own per-cycle retry counters
    /// (`stall_out_full` while output-blocked, `port_conflicts` while
    /// port-starved — see [`Engine::replay_inert`]) without any other state
    /// change. The one event transition a skipped span can contain is the
    /// *onset* of an output-full stall — the per-cycle loop stamps
    /// `StallBegin` on the first blocked cycle, so replay it here at `now`
    /// when the interval is not already open.
    pub fn skip_idle(&mut self, now: u64, span: u64, sram: &mut dyn MemoryPort) {
        if span == 0 || self.engine_done {
            return;
        }
        let Some(engine) = self.engine.as_ref() else {
            return;
        };
        self.stats.busy_cycles += span;
        if now < self.frozen_until {
            // Injected engine stall: each frozen step only ticks
            // `busy_cycles` (mirrors the early return in [`Hht::step`]).
            return;
        }
        if matches!(self.cached_wake, Some(Wake::At(_))) {
            // `Wake::At` contract: steps strictly before the wake cycle
            // only tick `busy_cycles` — nothing further to replay.
            return;
        }
        let out = OutputLevels {
            primary_free: self.primary.free(),
            secondary_free: self.secondary.free(),
            counts_free: self.counts.free(),
        };
        let out_full_before = self.stats.engine.stall_out_full;
        let conflicts_before = self.stats.engine.port_conflicts;
        engine.replay_inert(now, span, out, &mut self.stats.engine);
        // Each replayed arbitration loss is one failing `try_start` the
        // per-cycle loop would have issued — mirror it on the port side,
        // against the address the engine was actually retrying (so a banked
        // memory attributes the losses to the exact bank the per-cycle loop
        // would have rejected on).
        let lost = self.stats.engine.port_conflicts - conflicts_before;
        if lost > 0 {
            let wake = self.cached_wake.unwrap_or_else(|| engine.wake(now, out));
            let addr = match wake {
                Wake::NeedsPort { addr } => addr.unwrap_or(0),
                _ => 0,
            };
            sram.skip_conflicts(now, lost, addr, Requester::Hht);
        }
        if self.stats.engine.stall_out_full > out_full_before && !self.out_stall_open {
            if let Some(bus) = self.obs.as_mut() {
                bus.emit(now, Track::HhtBackend, EventKind::StallBegin(StallCause::OutputFull));
                self.out_stall_open = true;
            }
        }
    }

    /// Per-step event emission (cold path: only with a bus installed).
    fn emit_step_events(&mut self, now: u64, out_full_before: u64) {
        let stalled_out = self.stats.engine.stall_out_full > out_full_before;
        let done = self.engine_done;
        let levels =
            [self.primary.len() as u32, self.secondary.len() as u32, self.counts.len() as u32];
        let Some(bus) = self.obs.as_mut() else { return };
        if !self.run_slice_open {
            bus.emit(now, Track::HhtBackend, EventKind::SliceBegin("engine"));
            self.run_slice_open = true;
        }
        match (stalled_out, self.out_stall_open) {
            (true, false) => {
                bus.emit(now, Track::HhtBackend, EventKind::StallBegin(StallCause::OutputFull));
                self.out_stall_open = true;
            }
            (false, true) => {
                bus.emit(now, Track::HhtBackend, EventKind::StallEnd(StallCause::OutputFull));
                self.out_stall_open = false;
            }
            _ => {}
        }
        let tracks = [Track::BufferPrimary, Track::BufferSecondary, Track::BufferCounts];
        for i in 0..3 {
            if levels[i] != self.last_levels[i] {
                bus.emit(now, tracks[i], EventKind::BufferLevel { level: levels[i] });
                self.last_levels[i] = levels[i];
            }
        }
        if done {
            if self.out_stall_open {
                bus.emit(now, Track::HhtBackend, EventKind::StallEnd(StallCause::OutputFull));
                self.out_stall_open = false;
            }
            bus.emit(now, Track::HhtBackend, EventKind::SliceEnd("engine"));
            self.run_slice_open = false;
        }
    }

    // ---- fault-injection hooks (driven by the system's fault plan) ----

    /// Freeze the engine for `cycles` starting at `now` (an engine stall):
    /// it holds state and accrues busy cycles but makes no progress.
    pub fn freeze_engine(&mut self, now: u64, cycles: u64) {
        self.frozen_until = self.frozen_until.max(now + cycles);
    }

    /// Withhold stream-window responses for `cycles` starting at `now`
    /// (a delayed HHT response): CPU window reads stall until the delay
    /// expires, even when data is buffered.
    pub fn delay_responses(&mut self, now: u64, cycles: u64) {
        self.delay_until = self.delay_until.max(now + cycles);
    }

    /// Latch the sticky fault-error bit (STATUS bit 1) directly.
    pub fn set_sticky_error(&mut self) {
        self.sticky_error = true;
    }

    /// Whether the sticky fault-error bit is latched.
    pub fn sticky_error(&self) -> bool {
        self.sticky_error
    }

    /// Flip bit `bit % 32` of the primary stream's head element (a buffer
    /// soft error). Per-element parity catches the flip immediately —
    /// detection is modelled with zero latency so the per-cycle and
    /// cycle-skipping schedulers observe it on the same cycle — and
    /// latches the sticky error bit: the device withholds the corrupt
    /// stream rather than deliver a wrong word. Returns `false` (no fault
    /// landed) when the buffer is empty.
    pub fn corrupt_buffer(&mut self, now: u64, bit: u8) -> bool {
        if !self.primary.corrupt_head(bit) {
            return false;
        }
        self.stats.parity_errors += 1;
        self.sticky_error = true;
        if let Some(bus) = self.obs.as_mut() {
            bus.emit(now, Track::Fault, EventKind::FaultDetect { what: "buffer_parity" });
        }
        true
    }

    /// Silently discard the primary stream's head element (a dropped HHT
    /// response). Returns `false` when there was nothing to drop.
    pub fn drop_response(&mut self) -> bool {
        match self.primary.pop() {
            Some(_) => {
                // Buffer levels changed: an output-blocked engine may now
                // be runnable, so the memoized wake hint is stale.
                self.cached_wake = None;
                true
            }
            None => false,
        }
    }

    fn start(&mut self, now: u64) {
        let Some(cfg) = self.regs.decode() else {
            // Invalid MODE / element size: a real device NAKs the doorbell
            // by latching the sticky error bit instead of wedging — the
            // CPU-side timeout/watchdog protocol owns recovery.
            self.stats.decode_errors += 1;
            self.sticky_error = true;
            self.engine = None;
            self.engine_done = false;
            self.cached_wake = None;
            if let Some(bus) = self.obs.as_mut() {
                bus.emit(now, Track::Fault, EventKind::FaultDetect { what: "mmr_decode" });
            }
            return;
        };
        self.primary.clear();
        self.secondary.clear();
        self.counts.clear();
        self.engine_done = false;
        self.cached_wake = None;
        self.engine = Some(match cfg.mode {
            Mode::SpMV => Box::new(GatherEngine::new(cfg, self.params.blen)),
            Mode::SpMSpVAligned => {
                Box::new(SpMSpVEngine::new(cfg, SpMSpVVariant::Aligned, self.params.blen))
            }
            Mode::SpMSpVValueOrZero => {
                Box::new(SpMSpVEngine::new(cfg, SpMSpVVariant::ValueOrZero, self.params.blen))
            }
            Mode::Smash => Box::new(SmashEngine::new(cfg, self.params.blen)),
            Mode::ProgrammableSpMV => Box::new(crate::programmable::ProgrammableEngine::new(cfg)),
        });
        // A trivially empty operation may be done before its first step.
        if self.engine.as_ref().map(|e| e.done()).unwrap_or(false) {
            self.engine_done = true;
        }
    }

    fn pop_stream(&mut self, which: u32, now: u64) -> MmioReadResult {
        let is_window = matches!(which, window::PRIMARY | window::SECONDARY | window::COUNTS);
        if is_window && (self.sticky_error || now < self.delay_until) {
            // Responses withheld: a latched error stalls the windows until
            // the CPU-side protocol gives up; a delayed-response fault
            // stalls them until the delay expires.
            self.stats.cpu_stall_reads += 1;
            return MmioReadResult::Stall;
        }
        let fifo = match which {
            window::PRIMARY => &mut self.primary,
            window::SECONDARY => &mut self.secondary,
            window::COUNTS => &mut self.counts,
            _ => return MmioReadResult::Data(0),
        };
        match fifo.pop() {
            Some(v) => {
                // Buffer levels changed: an output-blocked engine may now
                // be runnable, so the memoized wake hint is stale.
                self.cached_wake = None;
                self.stats.elements_delivered += 1;
                MmioReadResult::Data(v)
            }
            None => {
                self.stats.cpu_stall_reads += 1;
                MmioReadResult::Stall
            }
        }
    }
}

impl MmioDevice for Hht {
    fn mmio_read(&mut self, addr: u32, now: u64) -> MmioReadResult {
        if map::is_hht_buffer(addr) {
            let off = (addr - map::HHT_BUF_BASE) & !0x3;
            return self.pop_stream(off & 0xC00, now);
        }
        if map::is_hht_mmr(addr) {
            let off = addr - map::HHT_MMR_BASE;
            if off == reg::STATUS {
                return MmioReadResult::Data(
                    (self.engine_done as u32) | ((self.sticky_error as u32) << 1),
                );
            }
            return MmioReadResult::Data(self.regs.read(off));
        }
        MmioReadResult::Data(0)
    }

    fn mmio_write(&mut self, addr: u32, value: u32, now: u64) {
        if map::is_hht_mmr(addr) {
            let off = addr - map::HHT_MMR_BASE;
            self.regs.write(off, value);
            if off == reg::START && value & 1 == 1 {
                self.start(now);
            }
        }
        // Stores to the buffer window are ignored (read-only streams).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmr::reg;
    use hht_mem::Sram;

    fn program_spmv(hht: &mut Hht, cols_base: u32, v_base: u32, nnz: u32) {
        let b = map::HHT_MMR_BASE;
        hht.mmio_write(b + reg::M_COLS_BASE, cols_base, 0);
        hht.mmio_write(b + reg::V_BASE, v_base, 0);
        hht.mmio_write(b + reg::M_NNZ, nnz, 0);
        hht.mmio_write(b + reg::ELEMENT_SIZES, 4, 0);
        hht.mmio_write(b + reg::MODE, Mode::SpMV as u32, 0);
        hht.mmio_write(b + reg::START, 1, 0);
    }

    #[test]
    fn end_to_end_spmv_gather() {
        let mut sram = Sram::new(4096, 2);
        sram.load_words(0x100, &[1, 0, 2]);
        sram.load_f32s(0x200, &[5.0, 6.0, 7.0]);
        let mut hht = Hht::new(HhtParams::default());
        program_spmv(&mut hht, 0x100, 0x200, 3);
        let mut got = Vec::new();
        for now in 0..200 {
            hht.step(now, &mut sram);
            if let MmioReadResult::Data(v) = hht.mmio_read(map::HHT_BUF_BASE, now) {
                got.push(f32::from_bits(v));
            }
            if got.len() == 3 {
                break;
            }
        }
        assert_eq!(got, vec![6.0, 5.0, 7.0]);
        assert!(hht.done());
        // Status register reads 1.
        assert_eq!(hht.mmio_read(map::HHT_MMR_BASE + reg::STATUS, 999), MmioReadResult::Data(1));
    }

    #[test]
    fn empty_stream_read_stalls() {
        let mut hht = Hht::new(HhtParams::default());
        assert_eq!(hht.mmio_read(map::HHT_BUF_BASE, 0), MmioReadResult::Stall);
        assert_eq!(hht.stats().cpu_stall_reads, 1);
    }

    #[test]
    fn mmr_read_back() {
        let mut hht = Hht::new(HhtParams::default());
        hht.mmio_write(map::HHT_MMR_BASE + reg::M_NUM_ROWS, 512, 0);
        assert_eq!(
            hht.mmio_read(map::HHT_MMR_BASE + reg::M_NUM_ROWS, 0),
            MmioReadResult::Data(512)
        );
    }

    #[test]
    fn capacity_reflects_buffer_count() {
        assert_eq!(HhtParams { num_buffers: 1, blen: 8 }.capacity(), 8);
        assert_eq!(HhtParams { num_buffers: 2, blen: 8 }.capacity(), 16);
        assert_eq!(HhtParams::default().capacity(), 16);
    }

    #[test]
    fn zero_nnz_operation_is_immediately_done() {
        let mut sram = Sram::new(256, 1);
        let mut hht = Hht::new(HhtParams::default());
        program_spmv(&mut hht, 0x0, 0x0, 0);
        hht.step(0, &mut sram);
        assert!(hht.done());
    }

    #[test]
    fn invalid_start_latches_sticky_error_instead_of_panicking() {
        let mut hht = Hht::new(HhtParams::default());
        let b = map::HHT_MMR_BASE;
        hht.mmio_write(b + reg::ELEMENT_SIZES, 8, 0); // unsupported SEW
        hht.mmio_write(b + reg::MODE, Mode::SpMV as u32, 0);
        hht.mmio_write(b + reg::START, 1, 0);
        assert_eq!(hht.stats().decode_errors, 1);
        assert!(hht.sticky_error());
        // STATUS bit 1 = fault error, bit 0 (done) clear.
        assert_eq!(hht.mmio_read(b + reg::STATUS, 1), MmioReadResult::Data(2));
        // Window reads stall rather than deliver garbage.
        assert_eq!(hht.mmio_read(map::HHT_BUF_BASE, 1), MmioReadResult::Stall);
        assert!(hht.window_read_would_stall(map::HHT_BUF_BASE, 1));
    }

    #[test]
    fn bad_mode_start_is_rejected() {
        let mut hht = Hht::new(HhtParams::default());
        let b = map::HHT_MMR_BASE;
        hht.mmio_write(b + reg::ELEMENT_SIZES, 4, 0);
        hht.mmio_write(b + reg::MODE, 99, 0); // invalid mode index
        hht.mmio_write(b + reg::START, 1, 0);
        assert_eq!(hht.stats().decode_errors, 1);
        assert!(hht.sticky_error());
    }

    #[test]
    fn delayed_responses_stall_windows_until_expiry() {
        let mut sram = Sram::new(4096, 1);
        sram.load_words(0x100, &[0]);
        sram.load_f32s(0x200, &[5.0]);
        let mut hht = Hht::new(HhtParams::default());
        program_spmv(&mut hht, 0x100, 0x200, 1);
        for now in 0..50 {
            hht.step(now, &mut sram);
        }
        hht.delay_responses(50, 10);
        assert!(hht.window_read_would_stall(map::HHT_BUF_BASE, 50));
        assert_eq!(hht.window_ready_at(map::HHT_BUF_BASE, 50), Some(60));
        assert_eq!(hht.mmio_read(map::HHT_BUF_BASE, 55), MmioReadResult::Stall);
        assert_eq!(hht.mmio_read(map::HHT_BUF_BASE, 60), MmioReadResult::Data(5.0f32.to_bits()));
    }

    #[test]
    fn corrupt_buffer_detects_parity_and_latches_error() {
        let mut sram = Sram::new(4096, 1);
        sram.load_words(0x100, &[0]);
        sram.load_f32s(0x200, &[5.0]);
        let mut hht = Hht::new(HhtParams::default());
        program_spmv(&mut hht, 0x100, 0x200, 1);
        for now in 0..50 {
            hht.step(now, &mut sram);
        }
        assert!(hht.corrupt_buffer(50, 3));
        assert_eq!(hht.stats().parity_errors, 1);
        assert!(hht.sticky_error());
        assert_eq!(hht.mmio_read(map::HHT_BUF_BASE, 51), MmioReadResult::Stall);
        // Empty buffer: the fault does not land.
        let mut idle = Hht::new(HhtParams::default());
        assert!(!idle.corrupt_buffer(0, 0));
        assert_eq!(idle.stats().parity_errors, 0);
    }

    #[test]
    fn dropped_response_loses_one_element() {
        let mut sram = Sram::new(4096, 1);
        sram.load_words(0x100, &[0, 1]);
        sram.load_f32s(0x200, &[5.0, 6.0]);
        let mut hht = Hht::new(HhtParams::default());
        program_spmv(&mut hht, 0x100, 0x200, 2);
        for now in 0..50 {
            hht.step(now, &mut sram);
        }
        assert!(hht.drop_response());
        // The second element is now at the head; the first never arrives.
        assert_eq!(hht.mmio_read(map::HHT_BUF_BASE, 51), MmioReadResult::Data(6.0f32.to_bits()));
        assert_eq!(hht.mmio_read(map::HHT_BUF_BASE, 52), MmioReadResult::Stall);
    }

    #[test]
    fn frozen_engine_holds_state_but_accrues_busy() {
        let mut sram = Sram::new(4096, 1);
        sram.load_words(0x100, &[0]);
        sram.load_f32s(0x200, &[5.0]);
        let mut hht = Hht::new(HhtParams::default());
        program_spmv(&mut hht, 0x100, 0x200, 1);
        hht.freeze_engine(0, 20);
        let busy0 = hht.stats().busy_cycles;
        for now in 0..20 {
            hht.step(now, &mut sram);
            // No element can be produced while frozen.
            assert!(hht.window_read_would_stall(map::HHT_BUF_BASE, now));
        }
        assert_eq!(hht.stats().busy_cycles, busy0 + 20);
        assert_eq!(hht.stats().engine.mem_reads, 0);
        // Thawed: the gather proceeds normally.
        for now in 20..80 {
            hht.step(now, &mut sram);
        }
        assert_eq!(hht.mmio_read(map::HHT_BUF_BASE, 80), MmioReadResult::Data(5.0f32.to_bits()));
    }

    #[test]
    fn buffer_window_write_is_ignored() {
        let mut hht = Hht::new(HhtParams::default());
        hht.mmio_write(map::HHT_BUF_BASE, 123, 0);
        assert_eq!(hht.mmio_read(map::HHT_BUF_BASE, 0), MmioReadResult::Stall);
    }
}
