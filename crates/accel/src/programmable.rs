//! The programmable HHT of §7 ("Conclusions"):
//!
//! > "To provide flexibility of sparse data representations (e.g., CSR,
//! > COO, Bit vector, SMASH), it may be worth considering a programmable
//! > HHT, using a simple RISCV like core. Such a HHT core can be even
//! > simpler than traditional 32-bit integer RISCV."
//!
//! This engine replaces the [`GatherEngine`](crate::engine::GatherEngine)
//! FSM with a second, tiny in-order RV32I core (`hht-sim` with
//! [`CoreConfig::helper_default`]) executing a *gather microprogram* built
//! at START from the same MMR configuration. The helper core's loads go
//! through the shared SRAM port as the HHT requester (CPU keeps priority),
//! and it publishes gathered values by storing to a magic output address
//! that this wrapper routes into the CPU-side FIFO.
//!
//! The price of flexibility is throughput: the FSM engine spends two
//! memory accesses per element, while the microprogram also executes ~7
//! instructions of loop overhead per element — the `ablate-programmable`
//! figure quantifies the gap, and the area/power model
//! (`hht_energy::inventory::programmable_hht_inventory`) prices the core.

use crate::engine::{Engine, EngineStats, Outputs};
use crate::mmr::EngineConfig;
use hht_isa::builder::KernelBuilder;
use hht_isa::{Program, Reg};
use hht_mem::mmio::{MmioDevice, MmioReadResult};
use hht_mem::MemoryPort;
use hht_sim::{Core, CoreConfig};

/// The magic store address the microprogram pushes gathered words to.
/// It sits in the HHT MMR window, which the helper core cannot otherwise
/// reach — the wrapper's capture device claims it.
pub const OUT_PORT: u32 = hht_mem::map::HHT_MMR_BASE + 0xF00;

/// Device presented to the helper core: swallows stores to [`OUT_PORT`]
/// into a queue the engine drains into the CPU-side FIFO.
#[derive(Debug, Default)]
struct OutCapture {
    pushed: Vec<u32>,
}

impl MmioDevice for OutCapture {
    fn mmio_read(&mut self, _addr: u32, _now: u64) -> MmioReadResult {
        MmioReadResult::Data(0)
    }
    fn mmio_write(&mut self, addr: u32, value: u32, _now: u64) {
        if addr == OUT_PORT {
            self.pushed.push(value);
        }
    }
}

/// Build the SpMV gather microprogram for a latched configuration:
///
/// ```text
/// for k in 0..m_nnz { out = v[4 * cols[k]] }
/// ```
fn gather_microprogram(cfg: &EngineConfig) -> Program {
    let (a0, a1, a2, t0, t1, t2) =
        (Reg::a(0), Reg::a(1), Reg::a(2), Reg::t(0), Reg::t(1), Reg::t(2));
    let mut b = KernelBuilder::new(0);
    b.li(a0, cfg.cols_base as i32); // cols cursor
    b.li(a1, cfg.v_base as i32); // gather source
    b.li(a2, cfg.m_nnz as i32); // elements remaining
    b.li(t2, OUT_PORT as i32); // output port
    let done = b.label();
    b.beqz(a2, done); // nnz == 0: nothing to do
    let top = b.here();
    b.lw(t0, 0, a0); // cols[k]
    b.slli(t0, t0, 2);
    b.add(t0, a1, t0);
    b.lw(t1, 0, t0); // v[cols[k]]
    b.sw(t1, 0, t2); // push to the CPU-side buffer
    b.addi(a0, a0, 4);
    b.addi(a2, a2, -1);
    b.bnez(a2, top); // bottom-test loop: one branch per element
    b.bind(done);
    b.ebreak();
    b.build()
}

/// The programmable back-end: a helper core running the gather
/// microprogram. Supports the SpMV mode (the §7 sketch); the point of the
/// design is that *other* formats become a software change, not an RTL
/// change.
pub struct ProgrammableEngine {
    core: Core,
    capture: OutCapture,
    m_nnz: u32,
    supplied: u32,
    /// mem_beats already accounted into EngineStats.
    beats_seen: u64,
}

impl std::fmt::Debug for ProgrammableEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgrammableEngine")
            .field("m_nnz", &self.m_nnz)
            .field("supplied", &self.supplied)
            .field("halted", &self.core.halted())
            .finish()
    }
}

impl ProgrammableEngine {
    /// Create the engine for a latched SpMV configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        let program = gather_microprogram(&cfg);
        ProgrammableEngine {
            core: Core::new(CoreConfig::helper_default(), program),
            capture: OutCapture::default(),
            m_nnz: cfg.m_nnz,
            supplied: 0,
            beats_seen: 0,
        }
    }

    /// The helper core's own performance counters (instructions executed
    /// per element is the §7 flexibility cost).
    pub fn core_stats(&self) -> hht_sim::CoreStats {
        self.core.stats()
    }
}

impl Engine for ProgrammableEngine {
    fn step(
        &mut self,
        now: u64,
        sram: &mut dyn MemoryPort,
        out: Outputs<'_>,
        stats: &mut EngineStats,
    ) {
        if self.core.halted() {
            return;
        }
        // Throttle: never let the microprogram produce into a full FIFO
        // (the store would be lost). One store per instruction at most, so
        // one free slot suffices.
        if out.primary.is_full() {
            stats.stall_out_full += 1;
            return;
        }
        self.core.step(now, sram, &mut self.capture);
        debug_assert!(
            self.core.error().is_none(),
            "gather microprogram fault: {:?}",
            self.core.error()
        );
        // Account memory reads made by the helper this step.
        let beats = self.core.stats().mem_beats;
        stats.mem_reads += beats - self.beats_seen;
        self.beats_seen = beats;
        for v in self.capture.pushed.drain(..) {
            out.primary.push(v);
            self.supplied += 1;
        }
    }

    fn done(&self) -> bool {
        self.core.halted() && self.supplied == self.m_nnz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::ElemFifo;
    use crate::mmr::Mode;
    use hht_mem::Sram;

    fn cfg(cols_base: u32, v_base: u32, m_nnz: u32) -> EngineConfig {
        EngineConfig {
            num_rows: 0,
            rows_base: 0,
            cols_base,
            vals_base: 0,
            v_base,
            v_idx_base: 0,
            v_vals_base: 0,
            v_nnz: 0,
            m_nnz,
            elem_size: 4,
            num_cols: 0,
            mode: Mode::SpMV,
        }
    }

    fn run(
        engine: &mut ProgrammableEngine,
        sram: &mut dyn MemoryPort,
        budget: u64,
    ) -> (Vec<u32>, EngineStats) {
        let mut primary = ElemFifo::new(16);
        let mut secondary = ElemFifo::new(1);
        let mut counts = ElemFifo::new(1);
        let mut stats = EngineStats::default();
        let mut got = Vec::new();
        for now in 0..budget {
            engine.step(
                now,
                sram,
                Outputs { primary: &mut primary, secondary: &mut secondary, counts: &mut counts },
                &mut stats,
            );
            while let Some(v) = primary.pop() {
                got.push(v);
            }
            if engine.done() {
                break;
            }
        }
        assert!(engine.done(), "programmable engine did not finish");
        (got, stats)
    }

    #[test]
    fn gathers_like_the_asic_engine() {
        let mut sram = Sram::new(4096, 1);
        sram.load_words(0x100, &[2, 0, 3, 1]);
        sram.load_f32s(0x200, &[10.0, 11.0, 12.0, 13.0]);
        let mut e = ProgrammableEngine::new(cfg(0x100, 0x200, 4));
        let (got, stats) = run(&mut e, &mut sram, 10_000);
        let vals: Vec<f32> = got.iter().map(|b| f32::from_bits(*b)).collect();
        assert_eq!(vals, vec![12.0, 10.0, 13.0, 11.0]);
        // Two loads per element, as in the FSM engine.
        assert_eq!(stats.mem_reads, 8);
    }

    #[test]
    fn slower_than_fsm_engine_per_element() {
        // The flexibility cost of §7: the microprogram needs instruction
        // fetch/execute on top of the two loads.
        let n = 32u32;
        let mk_sram = || {
            let mut s = Sram::new(65536, 1);
            s.load_words(0x100, &(0..n).collect::<Vec<_>>());
            s.load_f32s(0x1000, &vec![1.0; n as usize]);
            s
        };
        let mut sram = mk_sram();
        let mut prog = ProgrammableEngine::new(cfg(0x100, 0x1000, n));
        let t0 = {
            let mut primary = ElemFifo::new(1024);
            let mut secondary = ElemFifo::new(1);
            let mut counts = ElemFifo::new(1);
            let mut stats = EngineStats::default();
            let mut now = 0;
            while !prog.done() {
                prog.step(
                    now,
                    &mut sram,
                    Outputs {
                        primary: &mut primary,
                        secondary: &mut secondary,
                        counts: &mut counts,
                    },
                    &mut stats,
                );
                now += 1;
            }
            now
        };
        let mut sram = mk_sram();
        let mut fsm = crate::engine::GatherEngine::new(cfg(0x100, 0x1000, n), 8);
        let t1 = {
            let mut primary = ElemFifo::new(1024);
            let mut secondary = ElemFifo::new(1);
            let mut counts = ElemFifo::new(1);
            let mut stats = EngineStats::default();
            let mut now = 0;
            while !crate::engine::Engine::done(&fsm) {
                crate::engine::Engine::step(
                    &mut fsm,
                    now,
                    &mut sram,
                    Outputs {
                        primary: &mut primary,
                        secondary: &mut secondary,
                        counts: &mut counts,
                    },
                    &mut stats,
                );
                now += 1;
            }
            now
        };
        assert!(t0 > t1, "programmable ({t0}) must be slower than ASIC FSM ({t1})");
    }

    #[test]
    fn throttles_on_full_fifo() {
        let mut sram = Sram::new(4096, 1);
        sram.load_words(0x100, &[0, 1, 2, 3]);
        sram.load_f32s(0x200, &[1.0, 2.0, 3.0, 4.0]);
        let mut e = ProgrammableEngine::new(cfg(0x100, 0x200, 4));
        let mut primary = ElemFifo::new(2);
        let mut secondary = ElemFifo::new(1);
        let mut counts = ElemFifo::new(1);
        let mut stats = EngineStats::default();
        for now in 0..200 {
            e.step(
                now,
                &mut sram,
                Outputs { primary: &mut primary, secondary: &mut secondary, counts: &mut counts },
                &mut stats,
            );
        }
        assert_eq!(primary.len(), 2);
        assert!(stats.stall_out_full > 0);
        assert!(!e.done());
    }

    #[test]
    fn zero_nnz_halts_immediately() {
        let mut sram = Sram::new(256, 1);
        let mut e = ProgrammableEngine::new(cfg(0x10, 0x20, 0));
        let (got, _) = run(&mut e, &mut sram, 100);
        assert!(got.is_empty());
    }
}
