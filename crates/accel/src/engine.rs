//! Back-end (BE) engines — the HHT pipeline of §3.1/Fig. 3.
//!
//! Each engine is a cycle-stepped state machine with **one outstanding
//! memory operation** (the SRAM is single-ported, so the Fig. 3 pipeline's
//! issue stages serialize on the port anyway; the port occupancy model in
//! [`hht_mem::Sram`] is what sets the BE's throughput). Engines fetch
//! metadata (`cols`, row pointers, sparse-vector indices), compute element
//! addresses (`V_Base + s*k`, §3.2) and push gathered values into the
//! CPU-side FIFOs, throttled by the control unit's full/empty tracking.
//!
//! # The chunked count protocol
//!
//! Modes that produce a *variable* number of elements per row (SpMSpV
//! variant-1 and SMASH) cannot tell the CPU the row's element count up
//! front — the count is only known once the row's merge/scan completes,
//! but a row can produce far more elements than the buffers hold, so
//! waiting for the row to finish before publishing the count would
//! deadlock FE against BE. Instead the engine closes a *chunk* every time
//! `BLEN` elements accumulate (or the row ends) and pushes one header word
//! into the counts stream: low 31 bits = elements in the chunk, bit 31 =
//! last chunk of the row. The CPU alternates header reads and element
//! reads; buffer capacity `N × BLEN` is always enough for the elements of
//! one chunk, so the protocol is deadlock-free for any row length.

use crate::fifo::ElemFifo;
use crate::mmr::EngineConfig;
use hht_mem::{MemIssue, MemoryPort, Requester};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Build a chunk header word.
pub fn chunk_header(count: u32, last: bool) -> u32 {
    debug_assert!(count < 1 << 31);
    count | ((last as u32) << 31)
}

/// Element count of a header word.
pub fn header_count(h: u32) -> u32 {
    h & 0x7fff_ffff
}

/// Whether a header closes its row.
pub fn header_is_last(h: u32) -> bool {
    h >> 31 == 1
}

/// Statistics each engine accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Memory word reads issued by the BE.
    pub mem_reads: u64,
    /// Cycles the BE lost because the SRAM port was busy (CPU priority).
    pub port_conflicts: u64,
    /// Cycles the BE was throttled because an output FIFO was full — the
    /// paper's "HHT waiting for CPU to release free buffers" counter (§4).
    pub stall_out_full: u64,
    /// Cycles spent on internal (non-memory) work such as comparisons and
    /// bitmap scans.
    pub internal_cycles: u64,
}

/// Output FIFOs an engine may fill. `primary` carries vector values in
/// every mode; `secondary` carries aligned matrix values (variant-1);
/// `counts` carries chunk headers (variant-1 and SMASH).
pub struct Outputs<'a> {
    /// Vector-value stream.
    pub primary: &'a mut ElemFifo,
    /// Matrix-value stream (SpMSpV variant-1).
    pub secondary: &'a mut ElemFifo,
    /// Chunk-header stream.
    pub counts: &'a mut ElemFifo,
}

/// Read-only occupancy snapshot of the output FIFOs for [`Engine::wake`].
#[derive(Debug, Clone, Copy)]
pub struct OutputLevels {
    /// Free slots in the vector-value stream.
    pub primary_free: usize,
    /// Free slots in the matrix-value stream.
    pub secondary_free: usize,
    /// Free slots in the chunk-header stream.
    pub counts_free: usize,
}

/// When an engine can next make progress — the hint consumed by the
/// cycle-skipping scheduler (`hht-system`'s `System::run`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// The engine's next state-changing `step` happens at this absolute
    /// cycle; every step strictly before it only ticks `busy_cycles`.
    At(u64),
    /// The next step issues an SRAM read the moment the port is free; while
    /// the port is busy each stepped cycle loses arbitration and performs
    /// exactly the per-cycle charges [`Engine::replay_inert`] replays (at
    /// least one `port_conflicts`), changing nothing else. The scheduler
    /// resolves this against the port's free cycle, which the engine
    /// cannot see from `wake`. `addr` names the read's target address so a
    /// banked memory can resolve the wake against the exact bank the
    /// engine wants (`None` — an engine that cannot name it — makes the
    /// scheduler treat the wake as "could issue now", disabling skipping).
    NeedsPort {
        /// Target address of the read the next step will issue.
        addr: Option<u32>,
    },
    /// Inert until the CPU drains an output FIFO: every stepped cycle in
    /// this state records exactly one `stall_out_full` and changes nothing
    /// else.
    OutputBlocked,
    /// Retired — stepping does nothing at all.
    Never,
}

/// A back-end engine: stepped once per cycle while running.
pub trait Engine {
    /// Advance one cycle. `now` is the global cycle count.
    fn step(
        &mut self,
        now: u64,
        sram: &mut dyn MemoryPort,
        out: Outputs<'_>,
        stats: &mut EngineStats,
    );

    /// True once every element has been pushed to the FIFOs.
    fn done(&self) -> bool;

    /// When this engine can next make progress. The default — "right now" —
    /// is always safe: it merely disables skipping. Implementations must
    /// guarantee that every step strictly before the returned wake point
    /// performs exactly the per-cycle charges the scheduler replays in bulk
    /// (`busy_cycles` plus whatever [`Engine::replay_inert`] records for
    /// the current state).
    fn wake(&self, now: u64, _out: OutputLevels) -> Wake {
        Wake::At(now)
    }

    /// Charge the engine-side counters for `span` skipped cycles in the
    /// current (provably inert) state — exactly `span` times what one
    /// `step` would record. The default derives the charge from [`wake`]:
    /// a port-starved state loses arbitration once per cycle, an
    /// output-blocked state records one `stall_out_full` per cycle, and a
    /// pending/retired state charges nothing (its steps return at the
    /// guard). Engines whose stepped states charge more than one counter
    /// at once must override this.
    ///
    /// [`wake`]: Engine::wake
    fn replay_inert(&self, now: u64, span: u64, out: OutputLevels, stats: &mut EngineStats) {
        match self.wake(now, out) {
            Wake::NeedsPort { .. } => stats.port_conflicts += span,
            Wake::OutputBlocked => stats.stall_out_full += span,
            Wake::At(_) | Wake::Never => {}
        }
    }
}

/// One outstanding memory read: data captured at issue, architecturally
/// visible at `ready_at`.
#[derive(Debug, Clone, Copy)]
struct Pending {
    ready_at: u64,
    value: u32,
}

/// Issue a timed read of `addr` over the split-transaction protocol;
/// `None` on any refusal this cycle (bank busy, in-flight window full or
/// bandwidth budget spent — the backend attributes the kind). Data is
/// captured functionally at issue and becomes architecturally visible at
/// the response cycle. Out-of-range addresses (software programmed a bad
/// base into an MMR) read open-bus zero instead of crashing the simulator.
fn issue_read(
    sram: &mut dyn MemoryPort,
    now: u64,
    addr: u32,
    stats: &mut EngineStats,
) -> Option<Pending> {
    match sram.request(now, addr, Requester::Hht) {
        MemIssue::Granted { data_at, .. } => {
            stats.mem_reads += 1;
            Some(Pending { ready_at: data_at, value: sram.read_u32_checked(addr).unwrap_or(0) })
        }
        MemIssue::Refused(_) => {
            stats.port_conflicts += 1;
            None
        }
    }
}

// ---------------------------------------------------------------------------
// SpMV gather engine
// ---------------------------------------------------------------------------

/// The SpMV indexed-gather engine (§3.1): walk `M_cols[.]`, gather
/// `v[cols[k]]`, fill the CPU-side buffer. The two fetch stages of the
/// Fig. 3 pipeline are the two `PendingKind`s; the column-indices buffer
/// between them is `col_q` (BLEN deep, as in the paper).
#[derive(Debug)]
pub struct GatherEngine {
    cfg: EngineConfig,
    /// Next index into the cols array to fetch.
    next_col: u32,
    /// Fetched column indices awaiting their V fetch (the "BLEN-sized
    /// column-indices buffer" of §3.1).
    col_q: VecDeque<u32>,
    col_q_cap: usize,
    pending: Option<(Pending, PendingKind)>,
    supplied: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    ColIdx,
    VValue,
}

impl GatherEngine {
    /// Create the engine; `blen` is the buffer length (Table 1: 32 B / 8
    /// elements).
    pub fn new(cfg: EngineConfig, blen: usize) -> Self {
        GatherEngine {
            cfg,
            next_col: 0,
            col_q: VecDeque::with_capacity(blen),
            col_q_cap: blen,
            pending: None,
            supplied: 0,
        }
    }
}

impl Engine for GatherEngine {
    fn step(
        &mut self,
        now: u64,
        sram: &mut dyn MemoryPort,
        out: Outputs<'_>,
        stats: &mut EngineStats,
    ) {
        // Commit a completed fetch.
        if let Some((p, kind)) = self.pending {
            if now < p.ready_at {
                return;
            }
            match kind {
                PendingKind::ColIdx => self.col_q.push_back(p.value),
                PendingKind::VValue => {
                    out.primary.push(p.value);
                    self.supplied += 1;
                }
            }
            self.pending = None;
        }
        if self.done() {
            return;
        }
        // Prefer draining the column queue into V fetches (keeps the
        // CPU-side buffer filling); fall back to fetching more metadata.
        if let Some(&col) = self.col_q.front() {
            if out.primary.free() > 0 {
                let addr = self.cfg.v_base + self.cfg.elem_size * col;
                if let Some(p) = issue_read(sram, now, addr, stats) {
                    self.col_q.pop_front();
                    self.pending = Some((p, PendingKind::VValue));
                }
                return;
            }
            // Output full: control unit throttles the BE.
            stats.stall_out_full += 1;
            // Still allowed to prefetch metadata below if there is space.
        }
        if self.col_q.len() < self.col_q_cap && self.next_col < self.cfg.m_nnz {
            let addr = self.cfg.cols_base + self.cfg.elem_size * self.next_col;
            if let Some(p) = issue_read(sram, now, addr, stats) {
                self.next_col += 1;
                self.pending = Some((p, PendingKind::ColIdx));
            }
        }
    }

    fn done(&self) -> bool {
        self.supplied == self.cfg.m_nnz && self.pending.is_none() && self.col_q.is_empty()
    }

    fn wake(&self, now: u64, out: OutputLevels) -> Wake {
        if let Some((p, _)) = self.pending {
            // Steps before `ready_at` return immediately after the guard.
            return Wake::At(p.ready_at.max(now));
        }
        if self.done() {
            return Wake::Never;
        }
        if self.col_q.front().is_some() && out.primary_free == 0 {
            // Output full: only a metadata prefetch could still make
            // progress. Without one, each stepped cycle records exactly one
            // `stall_out_full`; with one, the step also contends for the
            // port.
            let can_prefetch = self.col_q.len() < self.col_q_cap && self.next_col < self.cfg.m_nnz;
            return if can_prefetch {
                Wake::NeedsPort {
                    addr: Some(self.cfg.cols_base + self.cfg.elem_size * self.next_col),
                }
            } else {
                Wake::OutputBlocked
            };
        }
        // A V fetch or metadata fetch issues as soon as the port is free —
        // the V fetch when a column index is queued, otherwise the next
        // metadata word (mirrors the issue order in `step`).
        let addr = match self.col_q.front() {
            Some(&col) => self.cfg.v_base + self.cfg.elem_size * col,
            None => self.cfg.cols_base + self.cfg.elem_size * self.next_col,
        };
        Wake::NeedsPort { addr: Some(addr) }
    }

    fn replay_inert(&self, _now: u64, span: u64, out: OutputLevels, stats: &mut EngineStats) {
        if self.pending.is_some() || self.done() {
            return;
        }
        if self.col_q.front().is_some() && out.primary_free == 0 {
            // Every stepped cycle here records the throttle; the prefetch
            // attempt additionally loses arbitration while the port is busy.
            stats.stall_out_full += span;
            if self.col_q.len() < self.col_q_cap && self.next_col < self.cfg.m_nnz {
                stats.port_conflicts += span;
            }
            return;
        }
        stats.port_conflicts += span;
    }
}

// ---------------------------------------------------------------------------
// SpMSpV engine (variants 1 and 2)
// ---------------------------------------------------------------------------

/// Which SpMSpV variant the engine runs (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpMSpVVariant {
    /// Variant-1: supply aligned (matrix value, vector value) pairs and
    /// per-chunk headers.
    Aligned,
    /// Variant-2: supply `x[col]`-or-zero for every matrix non-zero.
    ValueOrZero,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergePhase {
    /// Fetch `rows[r+1]` to learn where the current row ends.
    NeedRowEnd,
    /// Running the two-pointer merge.
    Merging,
    /// Variant-1: a full chunk must be closed (non-last header).
    EmitChunkHeader,
    /// Variant-1: the row ended; emit the last header.
    EmitRowHeader,
    /// All rows processed.
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergePending {
    RowEnd,
    ColIdx,
    VIdx,
    /// Vector value fetched on a match. For variant-1 the matrix value is
    /// fetched next; for variant-2 this completes the element.
    VVal,
    /// Matrix value (variant-1 second half of the pair).
    MVal,
}

/// The SpMSpV merge engine: per row, a two-pointer merge of the row's
/// column indices with the sparse vector's indices, exactly the alignment
/// work §1 attributes to SpMSpV ("requires the alignment of non-zero
/// elements of Matrix with non-zero elements of the Vector").
///
/// The engine re-streams the vector index array for every row (the sparse
/// vector does not fit in HHT-internal storage for the paper's sizes), so
/// variant work grows with `rows * v_nnz` at low sparsity — this is what
/// makes the CPU idle waiting for variant-1 in Fig. 7.
#[derive(Debug)]
pub struct SpMSpVEngine {
    cfg: EngineConfig,
    variant: SpMSpVVariant,
    blen: usize,
    phase: MergePhase,
    pending: Option<(Pending, MergePending)>,
    /// Current row, global nnz cursor and end-of-row cursor.
    r: u32,
    k: u32,
    row_end: u32,
    /// Vector-side cursor and its loaded index.
    b: u32,
    cur_vidx: Option<u32>,
    /// Matrix-side loaded column index.
    cur_col: Option<u32>,
    /// Elements pushed since the last header (variant-1 chunking).
    chunk_elems: u32,
    /// On a match, the vector value waiting for its matrix partner.
    match_vval: Option<u32>,
}

impl SpMSpVEngine {
    /// Create the engine for the given variant; `blen` is the chunk size
    /// (the buffer length).
    pub fn new(cfg: EngineConfig, variant: SpMSpVVariant, blen: usize) -> Self {
        let phase = if cfg.num_rows == 0 { MergePhase::Finished } else { MergePhase::NeedRowEnd };
        SpMSpVEngine {
            cfg,
            variant,
            blen,
            phase,
            pending: None,
            r: 0,
            k: 0,
            row_end: 0,
            b: 0,
            cur_vidx: None,
            cur_col: None,
            chunk_elems: 0,
            match_vval: None,
        }
    }

    fn start_next_row(&mut self) {
        self.r += 1;
        self.b = 0;
        self.cur_vidx = None;
        self.chunk_elems = 0;
        if self.r == self.cfg.num_rows {
            self.phase = MergePhase::Finished;
        } else {
            self.phase = MergePhase::NeedRowEnd;
        }
    }

    fn end_row(&mut self) {
        match self.variant {
            SpMSpVVariant::Aligned => self.phase = MergePhase::EmitRowHeader,
            SpMSpVVariant::ValueOrZero => self.start_next_row(),
        }
    }

    /// Variant-1 bookkeeping after completing one aligned pair.
    fn after_pair(&mut self) {
        self.chunk_elems += 1;
        self.cur_col = None;
        self.k += 1;
        self.b += 1;
        self.cur_vidx = None;
        if self.k == self.row_end {
            self.end_row();
        } else if self.chunk_elems as usize == self.blen {
            self.phase = MergePhase::EmitChunkHeader;
        }
    }
}

impl Engine for SpMSpVEngine {
    fn step(
        &mut self,
        now: u64,
        sram: &mut dyn MemoryPort,
        out: Outputs<'_>,
        stats: &mut EngineStats,
    ) {
        // Commit a completed fetch.
        if let Some((p, kind)) = self.pending {
            if now < p.ready_at {
                return;
            }
            self.pending = None;
            match kind {
                MergePending::RowEnd => {
                    self.row_end = p.value;
                    self.phase = MergePhase::Merging;
                }
                MergePending::ColIdx => self.cur_col = Some(p.value),
                MergePending::VIdx => self.cur_vidx = Some(p.value),
                MergePending::VVal => match self.variant {
                    SpMSpVVariant::Aligned => self.match_vval = Some(p.value),
                    SpMSpVVariant::ValueOrZero => {
                        out.primary.push(p.value);
                        self.cur_col = None;
                        self.k += 1;
                        self.b += 1;
                        self.cur_vidx = None;
                        if self.k == self.row_end {
                            self.end_row();
                        }
                    }
                },
                MergePending::MVal => {
                    // Complete the aligned pair.
                    out.secondary.push(p.value);
                    out.primary.push(self.match_vval.take().expect("vval precedes mval"));
                    self.after_pair();
                }
            }
        }
        match self.phase {
            MergePhase::Finished => {}
            MergePhase::NeedRowEnd => {
                let addr = self.cfg.rows_base + self.cfg.elem_size * (self.r + 1);
                if let Some(p) = issue_read(sram, now, addr, stats) {
                    self.pending = Some((p, MergePending::RowEnd));
                }
            }
            MergePhase::EmitChunkHeader => {
                if out.counts.is_full() {
                    stats.stall_out_full += 1;
                    return;
                }
                out.counts.push(chunk_header(self.chunk_elems, false));
                self.chunk_elems = 0;
                self.phase = MergePhase::Merging;
            }
            MergePhase::EmitRowHeader => {
                if out.counts.is_full() {
                    stats.stall_out_full += 1;
                    return;
                }
                out.counts.push(chunk_header(self.chunk_elems, true));
                self.start_next_row();
            }
            MergePhase::Merging => {
                if self.k == self.row_end {
                    // Empty row (or exhausted immediately).
                    self.end_row();
                    stats.internal_cycles += 1;
                    return;
                }
                // A matched pair is half-done: fetch the matrix value.
                if self.match_vval.is_some() {
                    let addr = self.cfg.vals_base + self.cfg.elem_size * self.k;
                    if let Some(p) = issue_read(sram, now, addr, stats) {
                        self.pending = Some((p, MergePending::MVal));
                    }
                    return;
                }
                // Ensure the matrix-side index is loaded.
                let col = match self.cur_col {
                    Some(c) => c,
                    None => {
                        let addr = self.cfg.cols_base + self.cfg.elem_size * self.k;
                        if let Some(p) = issue_read(sram, now, addr, stats) {
                            self.pending = Some((p, MergePending::ColIdx));
                        }
                        return;
                    }
                };
                // Vector exhausted: remaining matrix nnz have no partner.
                if self.b >= self.cfg.v_nnz {
                    match self.variant {
                        SpMSpVVariant::Aligned => {
                            // No more matches possible in this row.
                            self.k = self.row_end;
                            self.cur_col = None;
                            stats.internal_cycles += 1;
                            self.end_row();
                        }
                        SpMSpVVariant::ValueOrZero => {
                            if out.primary.is_full() {
                                stats.stall_out_full += 1;
                                return;
                            }
                            out.primary.push(0);
                            stats.internal_cycles += 1;
                            self.cur_col = None;
                            self.k += 1;
                            if self.k == self.row_end {
                                self.end_row();
                            }
                        }
                    }
                    return;
                }
                // Ensure the vector-side index is loaded.
                let vidx = match self.cur_vidx {
                    Some(v) => v,
                    None => {
                        let addr = self.cfg.v_idx_base + self.cfg.elem_size * self.b;
                        if let Some(p) = issue_read(sram, now, addr, stats) {
                            self.pending = Some((p, MergePending::VIdx));
                        }
                        return;
                    }
                };
                // The comparison itself.
                match col.cmp(&vidx) {
                    std::cmp::Ordering::Equal => {
                        // Match: fetch the vector value (both variants need
                        // space in `primary`; variant-1 also in `secondary`).
                        let need_secondary = matches!(self.variant, SpMSpVVariant::Aligned);
                        if out.primary.is_full() || (need_secondary && out.secondary.is_full()) {
                            stats.stall_out_full += 1;
                            return;
                        }
                        let addr = self.cfg.v_vals_base + self.cfg.elem_size * self.b;
                        if let Some(p) = issue_read(sram, now, addr, stats) {
                            self.pending = Some((p, MergePending::VVal));
                        }
                    }
                    std::cmp::Ordering::Less => {
                        // Matrix index behind: no vector partner for col.
                        match self.variant {
                            SpMSpVVariant::Aligned => {
                                self.cur_col = None;
                                self.k += 1;
                                stats.internal_cycles += 1;
                                if self.k == self.row_end {
                                    self.end_row();
                                }
                            }
                            SpMSpVVariant::ValueOrZero => {
                                if out.primary.is_full() {
                                    stats.stall_out_full += 1;
                                    return;
                                }
                                out.primary.push(0);
                                stats.internal_cycles += 1;
                                self.cur_col = None;
                                self.k += 1;
                                if self.k == self.row_end {
                                    self.end_row();
                                }
                            }
                        }
                    }
                    std::cmp::Ordering::Greater => {
                        // Vector index behind: advance it.
                        self.b += 1;
                        self.cur_vidx = None;
                        stats.internal_cycles += 1;
                    }
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.phase == MergePhase::Finished && self.pending.is_none()
    }

    /// Mirrors the decision tree in `step`: `OutputBlocked` exactly for the
    /// states whose step records one `stall_out_full` and returns.
    fn wake(&self, now: u64, out: OutputLevels) -> Wake {
        if let Some((p, _)) = self.pending {
            return Wake::At(p.ready_at.max(now));
        }
        match self.phase {
            MergePhase::Finished => Wake::Never,
            MergePhase::NeedRowEnd => Wake::NeedsPort {
                // Row-pointer fetch.
                addr: Some(self.cfg.rows_base + self.cfg.elem_size * (self.r + 1)),
            },
            MergePhase::EmitChunkHeader | MergePhase::EmitRowHeader => {
                if out.counts_free == 0 {
                    Wake::OutputBlocked
                } else {
                    Wake::At(now)
                }
            }
            MergePhase::Merging => {
                if self.k == self.row_end {
                    return Wake::At(now); // end-of-row bookkeeping
                }
                if self.match_vval.is_some() {
                    return Wake::NeedsPort {
                        // Matrix-value fetch.
                        addr: Some(self.cfg.vals_base + self.cfg.elem_size * self.k),
                    };
                }
                let Some(col) = self.cur_col else {
                    return Wake::NeedsPort {
                        // Column-index fetch.
                        addr: Some(self.cfg.cols_base + self.cfg.elem_size * self.k),
                    };
                };
                let primary_blocked = out.primary_free == 0;
                if self.b >= self.cfg.v_nnz {
                    // Vector exhausted: variant-1 skips ahead internally,
                    // variant-2 must emit a zero into `primary`.
                    return match self.variant {
                        SpMSpVVariant::Aligned => Wake::At(now),
                        SpMSpVVariant::ValueOrZero if primary_blocked => Wake::OutputBlocked,
                        SpMSpVVariant::ValueOrZero => Wake::At(now),
                    };
                }
                let Some(vidx) = self.cur_vidx else {
                    return Wake::NeedsPort {
                        // Vector-index fetch.
                        addr: Some(self.cfg.v_idx_base + self.cfg.elem_size * self.b),
                    };
                };
                match col.cmp(&vidx) {
                    std::cmp::Ordering::Equal => {
                        let need_secondary = matches!(self.variant, SpMSpVVariant::Aligned);
                        if primary_blocked || (need_secondary && out.secondary_free == 0) {
                            Wake::OutputBlocked
                        } else {
                            Wake::NeedsPort {
                                // Vector-value fetch.
                                addr: Some(self.cfg.v_vals_base + self.cfg.elem_size * self.b),
                            }
                        }
                    }
                    std::cmp::Ordering::Less => match self.variant {
                        SpMSpVVariant::Aligned => Wake::At(now),
                        SpMSpVVariant::ValueOrZero if primary_blocked => Wake::OutputBlocked,
                        SpMSpVVariant::ValueOrZero => Wake::At(now),
                    },
                    std::cmp::Ordering::Greater => Wake::At(now),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SMASH hierarchical-bitmap engine (§6)
// ---------------------------------------------------------------------------

/// SpMV over a SMASH-encoded matrix: the engine walks the level-0 presence
/// bitmap (skipping all-zero words via the level-1 summary bitmap),
/// converts set-bit positions to column indices, gathers the dense vector
/// values and emits per-chunk headers so the CPU can reconstruct rows.
///
/// Register reuse in [`EngineConfig`] for this mode: `rows_base` = level-0
/// bitmap, `cols_base` = level-1 bitmap (0 when absent), `v_base` = dense
/// vector, `num_cols` from the packed `ELEMENT_SIZES` register.
#[derive(Debug)]
pub struct SmashEngine {
    cfg: EngineConfig,
    blen: usize,
    /// Next level-0 word index to examine.
    word: u32,
    total_words: u32,
    /// Bits of the current level-0 word not yet scanned.
    cur_word: Option<u32>,
    cur_word_base_pos: u32,
    /// Loaded level-1 word covering the current group, and its index.
    cur_l1: Option<(u32, u32)>,
    pending: Option<(Pending, SmashPending)>,
    /// Row currently being produced and elements in its open chunk.
    cur_row: u32,
    chunk_elems: u32,
    /// Rows whose last header has been emitted.
    rows_closed: u32,
    /// A full (non-last) chunk header is owed.
    owe_full_header: bool,
    supplied: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SmashPending {
    L0Word,
    L1Word,
    VValue,
}

impl SmashEngine {
    /// Create the engine. `m_nnz` in the config must be the matrix's true
    /// non-zero count (drives `done`); `blen` is the chunk size.
    pub fn new(cfg: EngineConfig, blen: usize) -> Self {
        let total_bits = cfg.num_rows * cfg.num_cols;
        SmashEngine {
            cfg,
            blen,
            word: 0,
            total_words: total_bits.div_ceil(32),
            cur_word: None,
            cur_word_base_pos: 0,
            cur_l1: None,
            pending: None,
            cur_row: 0,
            chunk_elems: 0,
            rows_closed: 0,
            owe_full_header: false,
            supplied: 0,
        }
    }

    /// Close rows up to (not including) `row`: last header for the current
    /// row, then empty-row headers. Returns false when the counts FIFO
    /// filled (progress is preserved; the caller retries next cycle).
    fn close_rows_until(&mut self, row: u32, out: &mut Outputs<'_>) -> bool {
        while self.cur_row < row {
            if out.counts.is_full() {
                return false;
            }
            out.counts.push(chunk_header(self.chunk_elems, true));
            self.rows_closed += 1;
            self.chunk_elems = 0;
            self.cur_row += 1;
        }
        true
    }
}

impl Engine for SmashEngine {
    fn step(
        &mut self,
        now: u64,
        sram: &mut dyn MemoryPort,
        mut out: Outputs<'_>,
        stats: &mut EngineStats,
    ) {
        if let Some((p, kind)) = self.pending {
            if now < p.ready_at {
                return;
            }
            self.pending = None;
            match kind {
                SmashPending::L0Word => {
                    self.cur_word = Some(p.value);
                    self.cur_word_base_pos = self.word * 32;
                    self.word += 1;
                }
                SmashPending::L1Word => {
                    self.cur_l1 = Some((self.word / 32, p.value));
                }
                SmashPending::VValue => {
                    out.primary.push(p.value);
                    self.supplied += 1;
                    self.chunk_elems += 1;
                    if self.chunk_elems as usize == self.blen {
                        self.owe_full_header = true;
                    }
                }
            }
        }
        if self.done() {
            return;
        }
        // A full chunk must be published before more elements flow.
        if self.owe_full_header {
            if out.counts.is_full() {
                stats.stall_out_full += 1;
                return;
            }
            out.counts.push(chunk_header(self.chunk_elems, false));
            self.chunk_elems = 0;
            self.owe_full_header = false;
            return;
        }
        // Scan bits of the current word.
        if let Some(bits) = self.cur_word {
            if bits == 0 {
                self.cur_word = None;
                stats.internal_cycles += 1;
                return;
            }
            let tz = bits.trailing_zeros();
            let pos = self.cur_word_base_pos + tz;
            let row = pos / self.cfg.num_cols;
            let col = pos % self.cfg.num_cols;
            // Close out any completed rows first.
            if row > self.cur_row {
                if !self.close_rows_until(row, &mut out) {
                    stats.stall_out_full += 1;
                }
                return;
            }
            if out.primary.is_full() {
                stats.stall_out_full += 1;
                return;
            }
            let addr = self.cfg.v_base + self.cfg.elem_size * col;
            if let Some(p) = issue_read(sram, now, addr, stats) {
                self.cur_word = Some(bits & (bits - 1)); // clear lowest bit
                self.pending = Some((p, SmashPending::VValue));
            }
            return;
        }
        // Need the next level-0 word.
        if self.word < self.total_words {
            // Consult the level-1 summary first when present.
            if self.cfg.cols_base != 0 {
                let group = self.word / 32;
                match self.cur_l1 {
                    Some((g, l1)) if g == group => {
                        if l1 & (1 << (self.word % 32)) == 0 {
                            // The summary bit covers one level-0 word (32
                            // matrix entries): all zero, skip the load.
                            self.word += 1;
                            stats.internal_cycles += 1;
                            return;
                        }
                        // Fall through to fetch this level-0 word.
                    }
                    _ => {
                        let addr = self.cfg.cols_base + self.cfg.elem_size * group;
                        if let Some(p) = issue_read(sram, now, addr, stats) {
                            self.pending = Some((p, SmashPending::L1Word));
                        }
                        return;
                    }
                }
            }
            let addr = self.cfg.rows_base + self.cfg.elem_size * self.word;
            if let Some(p) = issue_read(sram, now, addr, stats) {
                self.pending = Some((p, SmashPending::L0Word));
            }
            return;
        }
        // Scan finished: close every remaining row.
        if self.rows_closed < self.cfg.num_rows
            && !self.close_rows_until(self.cfg.num_rows, &mut out)
        {
            stats.stall_out_full += 1;
        }
    }

    fn done(&self) -> bool {
        self.supplied == self.cfg.m_nnz
            && self.rows_closed == self.cfg.num_rows
            && self.pending.is_none()
            && !self.owe_full_header
    }

    fn wake(&self, now: u64, out: OutputLevels) -> Wake {
        if let Some((p, _)) = self.pending {
            return Wake::At(p.ready_at.max(now));
        }
        if self.done() {
            return Wake::Never;
        }
        if self.owe_full_header {
            return if out.counts_free == 0 { Wake::OutputBlocked } else { Wake::At(now) };
        }
        if let Some(bits) = self.cur_word {
            if bits == 0 {
                return Wake::At(now); // word retires internally
            }
            let pos = self.cur_word_base_pos + bits.trailing_zeros();
            if pos / self.cfg.num_cols > self.cur_row {
                // Row headers owed first; `close_rows_until` only advances
                // when `counts` has a free slot.
                return if out.counts_free == 0 { Wake::OutputBlocked } else { Wake::At(now) };
            }
            return if out.primary_free == 0 {
                Wake::OutputBlocked
            } else {
                // V fetch for the lowest set bit (mirrors `step`).
                Wake::NeedsPort {
                    addr: Some(self.cfg.v_base + self.cfg.elem_size * (pos % self.cfg.num_cols)),
                }
            };
        }
        if self.word < self.total_words {
            if self.cfg.cols_base != 0 {
                let group = self.word / 32;
                match self.cur_l1 {
                    Some((g, l1)) if g == group => {
                        if l1 & (1 << (self.word % 32)) == 0 {
                            return Wake::At(now); // level-1 summary skip (internal)
                        }
                        // Summary bit set: fall through to the level-0 fetch.
                    }
                    _ => {
                        // Level-1 summary word fetch.
                        return Wake::NeedsPort {
                            addr: Some(self.cfg.cols_base + self.cfg.elem_size * group),
                        };
                    }
                }
            }
            // Level-0 bitmap word fetch.
            return Wake::NeedsPort {
                addr: Some(self.cfg.rows_base + self.cfg.elem_size * self.word),
            };
        }
        // Tail: closing the remaining rows, gated on `counts` space.
        if self.rows_closed < self.cfg.num_rows && out.counts_free == 0 {
            return Wake::OutputBlocked;
        }
        Wake::At(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmr::Mode;
    use hht_mem::Sram;

    /// Drive an engine against a prepared SRAM until done (or a cycle
    /// budget runs out), draining outputs every cycle.
    fn run_engine(
        engine: &mut dyn Engine,
        sram: &mut dyn MemoryPort,
        budget: u64,
    ) -> (Vec<u32>, Vec<u32>, Vec<u32>, EngineStats) {
        let mut primary = ElemFifo::new(16);
        let mut secondary = ElemFifo::new(16);
        let mut counts = ElemFifo::new(16);
        let mut stats = EngineStats::default();
        let (mut p, mut s, mut c) = (Vec::new(), Vec::new(), Vec::new());
        for now in 0..budget {
            engine.step(
                now,
                sram,
                Outputs { primary: &mut primary, secondary: &mut secondary, counts: &mut counts },
                &mut stats,
            );
            while let Some(v) = primary.pop() {
                p.push(v);
            }
            while let Some(v) = secondary.pop() {
                s.push(v);
            }
            while let Some(v) = counts.pop() {
                c.push(v);
            }
            if engine.done() {
                break;
            }
        }
        assert!(engine.done(), "engine did not finish within budget");
        (p, s, c, stats)
    }

    fn base_cfg() -> EngineConfig {
        EngineConfig {
            num_rows: 0,
            rows_base: 0,
            cols_base: 0,
            vals_base: 0,
            v_base: 0,
            v_idx_base: 0,
            v_vals_base: 0,
            v_nnz: 0,
            m_nnz: 0,
            elem_size: 4,
            num_cols: 0,
            mode: Mode::SpMV,
        }
    }

    #[test]
    fn header_encoding_round_trips() {
        let h = chunk_header(7, true);
        assert_eq!(header_count(h), 7);
        assert!(header_is_last(h));
        let h = chunk_header(8, false);
        assert_eq!(header_count(h), 8);
        assert!(!header_is_last(h));
    }

    #[test]
    fn gather_engine_supplies_v_cols_k() {
        let mut sram = Sram::new(4096, 2);
        // cols at 0x100: [2, 0, 3]; v at 0x200: [10., 11., 12., 13.]
        sram.load_words(0x100, &[2, 0, 3]);
        sram.load_f32s(0x200, &[10.0, 11.0, 12.0, 13.0]);
        let cfg = EngineConfig { m_nnz: 3, cols_base: 0x100, v_base: 0x200, ..base_cfg() };
        let mut e = GatherEngine::new(cfg, 8);
        let (p, _, _, stats) = run_engine(&mut e, &mut sram, 1000);
        let vals: Vec<f32> = p.iter().map(|b| f32::from_bits(*b)).collect();
        assert_eq!(vals, vec![12.0, 10.0, 13.0]);
        // 3 col reads + 3 v reads.
        assert_eq!(stats.mem_reads, 6);
    }

    #[test]
    fn gather_engine_throughput_is_two_accesses_per_element() {
        let mut sram = Sram::new(65536, 2);
        let n = 64u32;
        let cols: Vec<u32> = (0..n).collect();
        sram.load_words(0x100, &cols);
        sram.load_f32s(0x1000, &vec![1.0; n as usize]);
        let cfg = EngineConfig { m_nnz: n, cols_base: 0x100, v_base: 0x1000, ..base_cfg() };
        let mut e = GatherEngine::new(cfg, 8);
        let mut primary = ElemFifo::new(1024);
        let mut secondary = ElemFifo::new(1);
        let mut counts = ElemFifo::new(1);
        let mut stats = EngineStats::default();
        let mut finish = 0;
        for now in 0..100_000u64 {
            e.step(
                now,
                &mut sram,
                Outputs { primary: &mut primary, secondary: &mut secondary, counts: &mut counts },
                &mut stats,
            );
            if e.done() {
                finish = now;
                break;
            }
        }
        assert!(e.done());
        // 2 reads/element * 2 cycles/read = 4 cycles/element steady state.
        let per_elem = finish as f64 / n as f64;
        assert!((3.5..=5.0).contains(&per_elem), "cycles/element = {per_elem}");
    }

    #[test]
    fn gather_engine_throttles_on_full_output() {
        let mut sram = Sram::new(4096, 1);
        sram.load_words(0x100, &[0, 1, 2, 3]);
        sram.load_f32s(0x200, &[1.0, 2.0, 3.0, 4.0]);
        let cfg = EngineConfig { m_nnz: 4, cols_base: 0x100, v_base: 0x200, ..base_cfg() };
        let mut e = GatherEngine::new(cfg, 8);
        let mut primary = ElemFifo::new(2); // tiny output
        let mut secondary = ElemFifo::new(1);
        let mut counts = ElemFifo::new(1);
        let mut stats = EngineStats::default();
        for now in 0..50 {
            e.step(
                now,
                &mut sram,
                Outputs { primary: &mut primary, secondary: &mut secondary, counts: &mut counts },
                &mut stats,
            );
        }
        // Engine must stop at 2 elements without overflowing, and record
        // the wait-for-CPU condition.
        assert_eq!(primary.len(), 2);
        assert!(stats.stall_out_full > 0);
        assert!(!e.done());
    }

    /// Shared fixture: 3x4 matrix rows=[0,2,3,5], cols=[0,2 | 1 | 0,3],
    /// vals=[1,2,3,4,5]; sparse x: idx=[0,2,3], vals=[10,20,30].
    fn spmspv_fixture(sram: &mut dyn MemoryPort) -> EngineConfig {
        sram.load_words(0x100, &[0, 2, 3, 5]); // rows
        sram.load_words(0x200, &[0, 2, 1, 0, 3]); // cols
        sram.load_f32s(0x300, &[1.0, 2.0, 3.0, 4.0, 5.0]); // vals
        sram.load_words(0x400, &[0, 2, 3]); // v idx
        sram.load_f32s(0x500, &[10.0, 20.0, 30.0]); // v vals
        EngineConfig {
            num_rows: 3,
            rows_base: 0x100,
            cols_base: 0x200,
            vals_base: 0x300,
            v_idx_base: 0x400,
            v_vals_base: 0x500,
            v_nnz: 3,
            m_nnz: 5,
            ..base_cfg()
        }
    }

    #[test]
    fn spmspv_aligned_emits_matched_pairs_and_headers() {
        let mut sram = Sram::new(4096, 1);
        let cfg = spmspv_fixture(&mut sram);
        let mut e = SpMSpVEngine::new(cfg, SpMSpVVariant::Aligned, 8);
        let (p, s, c, _) = run_engine(&mut e, &mut sram, 10_000);
        // Row 0: cols {0,2} vs idx {0,2,3} -> matches (1,10),(2,20).
        // Row 1: col {1} -> none. Row 2: cols {0,3} -> (4,10),(5,30).
        let pv: Vec<f32> = p.iter().map(|b| f32::from_bits(*b)).collect();
        let sv: Vec<f32> = s.iter().map(|b| f32::from_bits(*b)).collect();
        assert_eq!(pv, vec![10.0, 20.0, 10.0, 30.0]);
        assert_eq!(sv, vec![1.0, 2.0, 4.0, 5.0]);
        assert_eq!(c, vec![chunk_header(2, true), chunk_header(0, true), chunk_header(2, true)]);
    }

    #[test]
    fn spmspv_aligned_chunks_long_rows() {
        // One row with 20 matrix nnz all matching the vector -> with
        // blen=8 the header stream must be 8,8,4(last).
        let mut sram = Sram::new(65536, 1);
        let n = 20u32;
        let idx: Vec<u32> = (0..n).collect();
        sram.load_words(0x100, &[0, n]); // rows
        sram.load_words(0x200, &idx); // cols 0..20
        sram.load_f32s(0x300, &vec![1.0; n as usize]); // vals
        sram.load_words(0x400, &idx); // v idx 0..20
        sram.load_f32s(0x500, &vec![2.0; n as usize]); // v vals
        let cfg = EngineConfig {
            num_rows: 1,
            rows_base: 0x100,
            cols_base: 0x200,
            vals_base: 0x300,
            v_idx_base: 0x400,
            v_vals_base: 0x500,
            v_nnz: n,
            m_nnz: n,
            ..base_cfg()
        };
        let mut e = SpMSpVEngine::new(cfg, SpMSpVVariant::Aligned, 8);
        let (p, s, c, _) = run_engine(&mut e, &mut sram, 100_000);
        assert_eq!(p.len(), 20);
        assert_eq!(s.len(), 20);
        assert_eq!(c, vec![chunk_header(8, false), chunk_header(8, false), chunk_header(4, true)]);
    }

    #[test]
    fn spmspv_value_or_zero_emits_one_value_per_nnz() {
        let mut sram = Sram::new(4096, 1);
        let cfg = spmspv_fixture(&mut sram);
        let mut e = SpMSpVEngine::new(cfg, SpMSpVVariant::ValueOrZero, 8);
        let (p, s, c, _) = run_engine(&mut e, &mut sram, 10_000);
        let pv: Vec<f32> = p.iter().map(|b| f32::from_bits(*b)).collect();
        // Per matrix nnz in CSR order: x[0]=10, x[2]=20, x[1]=0, x[0]=10, x[3]=30.
        assert_eq!(pv, vec![10.0, 20.0, 0.0, 10.0, 30.0]);
        assert!(s.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn spmspv_with_empty_vector() {
        let mut sram = Sram::new(4096, 1);
        let mut cfg = spmspv_fixture(&mut sram);
        cfg.v_nnz = 0;
        let mut e = SpMSpVEngine::new(cfg, SpMSpVVariant::ValueOrZero, 8);
        let (p, _, _, _) = run_engine(&mut e, &mut sram, 10_000);
        assert_eq!(p.len(), 5);
        assert!(p.iter().all(|b| f32::from_bits(*b) == 0.0));
        let mut e = SpMSpVEngine::new(cfg, SpMSpVVariant::Aligned, 8);
        let (p, s, c, _) = run_engine(&mut e, &mut sram, 10_000);
        assert!(p.is_empty());
        assert!(s.is_empty());
        assert_eq!(c, vec![chunk_header(0, true); 3]);
    }

    #[test]
    fn spmspv_zero_rows_is_immediately_done() {
        let cfg = EngineConfig { num_rows: 0, ..base_cfg() };
        let e = SpMSpVEngine::new(cfg, SpMSpVVariant::Aligned, 8);
        assert!(e.done());
    }

    #[test]
    fn smash_engine_gathers_and_counts() {
        let mut sram = Sram::new(4096, 1);
        // 3x3 matrix, bits at flat positions 0,2,5,6 (Fig. 1): bitmap 0x65.
        sram.load_words(0x100, &[0x65]); // level-0
        sram.load_f32s(0x200, &[10.0, 11.0, 12.0]); // dense v
        let cfg = EngineConfig {
            num_rows: 3,
            num_cols: 3,
            rows_base: 0x100,
            cols_base: 0, // no level-1
            v_base: 0x200,
            m_nnz: 4,
            mode: Mode::Smash,
            ..base_cfg()
        };
        let mut e = SmashEngine::new(cfg, 8);
        let (p, _, c, _) = run_engine(&mut e, &mut sram, 10_000);
        let pv: Vec<f32> = p.iter().map(|b| f32::from_bits(*b)).collect();
        // nnz at (0,0),(0,2),(1,2),(2,0) -> v[0],v[2],v[2],v[0]
        assert_eq!(pv, vec![10.0, 12.0, 12.0, 10.0]);
        assert_eq!(c, vec![chunk_header(2, true), chunk_header(1, true), chunk_header(1, true)]);
    }

    #[test]
    fn smash_engine_chunks_long_rows() {
        // 1x40 matrix, 20 nnz in row 0 -> headers 8,8,4(last).
        let mut sram = Sram::new(65536, 1);
        let mut l0 = vec![0u32; 2];
        for i in 0..20 {
            l0[i / 32] |= 1 << (i % 32);
        }
        sram.load_words(0x100, &l0);
        sram.load_f32s(0x200, &[3.0; 40]);
        let cfg = EngineConfig {
            num_rows: 1,
            num_cols: 40,
            rows_base: 0x100,
            cols_base: 0,
            v_base: 0x200,
            m_nnz: 20,
            mode: Mode::Smash,
            ..base_cfg()
        };
        let mut e = SmashEngine::new(cfg, 8);
        let (p, _, c, _) = run_engine(&mut e, &mut sram, 100_000);
        assert_eq!(p.len(), 20);
        assert_eq!(c, vec![chunk_header(8, false), chunk_header(8, false), chunk_header(4, true)]);
    }

    #[test]
    fn smash_engine_skips_via_level1() {
        // 64x64: only bit 0 set. Level-0 has 128 words; level-1 is 4 words
        // with only bit 0 of word 0 set.
        let mut sram = Sram::new(65536, 1);
        let mut l0 = vec![0u32; 128];
        l0[0] = 1;
        let mut l1 = vec![0u32; 4];
        l1[0] = 1;
        sram.load_words(0x1000, &l0);
        sram.load_words(0x2000, &l1);
        sram.load_f32s(0x3000, &vec![7.0; 64]);
        let cfg = EngineConfig {
            num_rows: 64,
            num_cols: 64,
            rows_base: 0x1000,
            cols_base: 0x2000,
            v_base: 0x3000,
            m_nnz: 1,
            mode: Mode::Smash,
            ..base_cfg()
        };
        let mut e = SmashEngine::new(cfg, 8);
        let (p, _, c, stats) = run_engine(&mut e, &mut sram, 100_000);
        assert_eq!(p.len(), 1);
        assert_eq!(c.len(), 64);
        assert_eq!(c[0], chunk_header(1, true));
        assert!(c[1..].iter().all(|&x| x == chunk_header(0, true)));
        // With the summary level, far fewer than 128 level-0 loads happen.
        assert!(stats.mem_reads < 128, "mem_reads = {}", stats.mem_reads);
    }
}
