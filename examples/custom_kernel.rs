//! Drive the simulator directly with hand-written RISC-V assembly.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```
//!
//! Shows the lower layers of the stack: the text assembler, the SRAM image
//! builder, the MMIO-programmed HHT and the lock-step system loop — the
//! pieces the kernel library uses under the hood. The kernel computes a
//! dot product of a gathered slice: `sum(v[idx[i]] * w[i])`, first with an
//! explicit CPU-side gather, then by programming the HHT's SpMV engine to
//! stream `v[idx[i]]` through the buffer window.

use hht::accel::mmr::reg;
use hht::isa::asm::assemble;
use hht::mem::{map, Sram};
use hht::system::config::SystemConfig;
use hht::system::System;

const N: usize = 64;
const IDX: u32 = 0x1000; // index array
const V: u32 = 0x2000; // gather source
const W: u32 = 0x3000; // weights
const OUT: u32 = 0x4000; // result

fn image(cfg: &SystemConfig) -> Sram {
    let mut sram = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
    // A permutation-ish index pattern and two value arrays.
    let idx: Vec<u32> = (0..N as u32).map(|i| (i * 7) % N as u32).collect();
    sram.load_words(IDX, &idx);
    sram.load_f32s(V, &(0..N).map(|i| i as f32).collect::<Vec<_>>());
    sram.load_f32s(W, &(0..N).map(|i| 1.0 + (i % 3) as f32).collect::<Vec<_>>());
    sram
}

fn main() {
    let cfg = SystemConfig::paper_default();

    // --- CPU-only version: scalar loop with the indirect access. ---
    let baseline_src = format!(
        r#"
        li   a0, {IDX}
        li   a1, {V}
        li   a2, {W}
        li   a3, {n}
        fmv.w.x fa0, zero        # acc = 0
    loop:
        lw   t0, 0(a0)           # idx[i]
        slli t0, t0, 2
        add  t0, a1, t0
        flw  fa1, 0(t0)          # v[idx[i]]  (the indirect access)
        flw  fa2, 0(a2)          # w[i]
        fmadd.s fa0, fa1, fa2, fa0
        addi a0, a0, 4
        addi a2, a2, 4
        addi a3, a3, -1
        bnez a3, loop
        li   t1, {OUT}
        fsw  fa0, 0(t1)
        ebreak
    "#,
        n = N
    );
    let program = assemble(&baseline_src).expect("baseline assembles");
    let mut sys = System::new(&cfg, program, image(&cfg));
    let base = sys.run().expect("baseline runs");
    let y_base = sys.mem().read_f32(OUT);
    println!("CPU-only gather:  sum = {y_base}, {} cycles", base.cycles);

    // --- HHT version: program the SpMV engine to stream v[idx[i]]. ---
    // The index array plays the role of the CSR cols array.
    let hht_src = format!(
        r#"
        # program the HHT MMRs (Sec. 3.1), START bit last
        li   t6, {mmr}
        li   t5, {IDX}
        sw   t5, {r_cols}(t6)    # M_Cols_Base := idx array
        li   t5, {V}
        sw   t5, {r_vbase}(t6)   # V_Base := gather source
        li   t5, {n}
        sw   t5, {r_nnz}(t6)     # M_NNZ := element count
        li   t5, 4
        sw   t5, {r_esz}(t6)     # ElementSizes := 4-byte words
        sw   zero, {r_mode}(t6)  # MODE := SpMV gather
        li   t5, 1
        sw   t5, {r_start}(t6)   # Start
        # consume the stream
        li   a1, {win}
        li   a2, {W}
        li   a3, {n}
        fmv.w.x fa0, zero
    loop:
        flw  fa1, 0(a1)          # pre-gathered v[idx[i]] (may stall)
        flw  fa2, 0(a2)
        fmadd.s fa0, fa1, fa2, fa0
        addi a2, a2, 4
        addi a3, a3, -1
        bnez a3, loop
        li   t1, {OUT}
        fsw  fa0, 0(t1)
        ebreak
    "#,
        mmr = map::HHT_MMR_BASE,
        win = map::HHT_BUF_BASE,
        r_cols = reg::M_COLS_BASE,
        r_vbase = reg::V_BASE,
        r_nnz = reg::M_NNZ,
        r_esz = reg::ELEMENT_SIZES,
        r_mode = reg::MODE,
        r_start = reg::START,
        n = N
    );
    let program = assemble(&hht_src).expect("HHT kernel assembles");
    let mut sys = System::new(&cfg, program, image(&cfg));
    let hht = sys.run().expect("HHT kernel runs");
    let y_hht = sys.mem().read_f32(OUT);
    println!("HHT-gathered:     sum = {y_hht}, {} cycles", hht.cycles);
    assert_eq!(y_base, y_hht, "both versions must agree");
    println!(
        "speedup {:.2}x, CPU waited {} cycles for the HHT",
        base.cycles as f64 / hht.cycles as f64,
        hht.core.hht_wait_cycles
    );
}
