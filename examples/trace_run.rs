//! Observability demo: per-cause stall attribution + Chrome trace export.
//!
//! ```text
//! cargo run --release --example trace_run
//! ```
//!
//! Runs the HHT SpMV kernel with the event sinks enabled, prints the
//! unified metrics snapshot's stall histogram (which sums exactly to the
//! coarse wait counters the paper's figures use), and writes a Chrome
//! trace-event JSON file to the system temp directory — open it in
//! `chrome://tracing` or <https://ui.perfetto.dev> to see the CPU stall
//! slices, HHT back-end activity, SRAM arbitration and buffer levels on
//! one cycle-accurate timeline.

use hht::obs::chrome::chrome_trace_json;
use hht::sparse::generate;
use hht::system::config::{SystemConfig, TraceConfig};
use hht::system::runner;

fn main() {
    let cfg = SystemConfig::paper_default().with_trace(TraceConfig::enabled());
    let m = generate::random_csr(96, 96, 0.6, 7);
    let v = generate::random_dense_vector(96, 8);
    let out = runner::run_spmv_hht(&cfg, &m, &v);

    let snap = out.stats.snapshot();
    snap.validate().expect("stall histogram must sum to the wait counters");

    println!("== HHT SpMV 96x96, {} cycles ==", snap.cycles);
    println!("stall attribution (cycles):");
    for (label, cycles) in snap.stalls.entries() {
        let pct = 100.0 * cycles as f64 / snap.cycles as f64;
        println!("  {label:<18} {cycles:>8}  ({pct:5.1}% of run)");
    }
    println!(
        "  cpu hht wait       {:>8}  (== hht_window_empty + hht_header_wait)",
        snap.core.hht_wait_cycles
    );
    println!("  port arb losses    {:>8}  (== arbitration_loss)", snap.core.mem_port_stall_cycles);

    let trace_path = std::env::temp_dir().join("hht_trace.json");
    std::fs::write(&trace_path, chrome_trace_json(&out.events)).expect("write trace");
    println!(
        "\n{} events captured; Chrome trace written to {}",
        out.events.len(),
        trace_path.display()
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev");
}
