//! Profile a kernel: execution trace + instruction-mix histogram.
//!
//! ```text
//! cargo run --release --example profile_kernel
//! ```
//!
//! Runs the baseline and HHT SpMV kernels with tracing enabled and prints
//! each one's instruction mix — making the §2 "metadata overhead" argument
//! visible instruction by instruction: the baseline spends a large share
//! on gathers, column loads and address arithmetic that simply vanish from
//! the HHT version's CPU stream.

use hht::accel::{Hht, HhtParams};
use hht::mem::Sram;
use hht::sim::profile::InstructionMix;
use hht::sim::Core;
use hht::sparse::generate;
use hht::system::config::SystemConfig;
use hht::system::{kernels, layout};

fn traced_run(cfg: &SystemConfig, hht_kernel: bool) -> (InstructionMix, u64) {
    let m = generate::random_csr(64, 64, 0.6, 7);
    let v = generate::random_dense_vector(64, 8);
    let mut sram = Sram::new(cfg.ram_size, cfg.ram_word_cycles);
    let l = layout::layout_spmv(&mut sram, &m, &v);
    let program =
        if hht_kernel { kernels::spmv_hht(&l, true) } else { kernels::spmv_baseline(&l, true) };
    let mut core = Core::new(cfg.core, program);
    core.enable_trace();
    let mut hht = Hht::new(HhtParams::default());
    let mut now = 0u64;
    while !core.halted() {
        core.step(now, &mut sram, &mut hht);
        hht.step(now, &mut sram);
        now += 1;
    }
    (InstructionMix::from_trace(&core.trace()), now)
}

fn main() {
    let cfg = SystemConfig::paper_default();
    let (base_mix, base_cycles) = traced_run(&cfg, false);
    let (hht_mix, hht_cycles) = traced_run(&cfg, true);
    println!("== baseline SpMV (Algorithm 1), {base_cycles} cycles ==");
    println!("{base_mix}\n");
    println!("== HHT SpMV, {hht_cycles} cycles ==");
    println!("{hht_mix}\n");
    println!(
        "the gather + metadata instructions ({} of {}) disappear from the CPU stream,",
        base_mix.total() - hht_mix.total(),
        base_mix.total()
    );
    println!(
        "cutting cycles {base_cycles} -> {hht_cycles} ({:.2}x)",
        base_cycles as f64 / hht_cycles as f64
    );
}
