//! PageRank by repeated SpMV on a power-law web graph — one of the §1
//! motivating workload families ("label propagation", "betweenness
//! centrality", graph analytics in general are built on sparse
//! matrix-vector products).
//!
//! ```text
//! cargo run --release --example pagerank [n] [iters]
//! ```
//!
//! Every power-iteration step runs on the cycle-level simulated MCU, once
//! baseline and once HHT-assisted, accumulating simulated cycles; the
//! ranks are cross-checked against a host-side float computation.

use hht::sparse::{generate, CsrMatrix, DenseVector, SparseFormat};
use hht::system::config::SystemConfig;
use hht::system::runner;

const DAMPING: f32 = 0.85;

/// Column-normalize the adjacency matrix: each column sums to 1 (a random
/// surfer leaves every page with total probability 1).
fn transition_matrix(adj: &CsrMatrix) -> CsrMatrix {
    let n = adj.rows();
    let mut col_deg = vec![0usize; n];
    for (_, c, _) in adj.triplets() {
        col_deg[c] += 1;
    }
    let triplets: Vec<(usize, usize, f32)> = adj
        .triplets()
        .into_iter()
        .map(|(r, c, _)| (r, c, 1.0 / col_deg[c].max(1) as f32))
        .collect();
    CsrMatrix::from_triplets(n, n, &triplets).expect("same coordinates as adj")
}

/// One damped power-iteration step on the host (verification oracle).
fn host_step(m: &CsrMatrix, rank: &DenseVector) -> DenseVector {
    let n = rank.len();
    let mv = hht::sparse::kernels::spmv(m, rank).expect("shapes agree");
    DenseVector::from(
        (0..n).map(|i| (1.0 - DAMPING) / n as f32 + DAMPING * mv[i]).collect::<Vec<_>>(),
    )
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    let iters: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    let adj = generate::power_law_csr(n, (n as f64 * 0.04).max(3.0), 0x9A6E);
    let m = transition_matrix(&adj);
    println!(
        "graph: {n} pages, {} links ({:.1}% sparse), {iters} power iterations\n",
        m.nnz(),
        m.sparsity() * 100.0
    );

    let cfg = SystemConfig::paper_default();
    let mut rank = DenseVector::from(vec![1.0 / n as f32; n]);
    let (mut base_cycles, mut hht_cycles) = (0u64, 0u64);
    for it in 0..iters {
        let base = runner::run_spmv_baseline(&cfg, &m, &rank);
        let hht = runner::run_spmv_hht(&cfg, &m, &rank);
        base_cycles += base.stats.cycles;
        hht_cycles += hht.stats.cycles;
        // The damping update runs host-side (it is dense and trivial); the
        // SpMV — the expensive kernel — ran on the simulated system.
        let next = host_step(&m, &rank);
        // Sanity: the simulated SpMV agrees with the host oracle.
        let check = hht.y.max_abs_diff(&hht::sparse::kernels::spmv(&m, &rank).unwrap());
        assert!(check < 1e-4, "iteration {it}: divergence {check}");
        rank = next;
    }

    let mut top: Vec<(usize, f32)> = rank.as_slice().iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top pages: {:?}", &top[..5.min(top.len())]);
    println!(
        "\nsimulated cycles over {iters} iterations: baseline {base_cycles}, HHT {hht_cycles} ({:.2}x)",
        base_cycles as f64 / hht_cycles as f64
    );
    println!(
        "at 1.1 GHz that is {:.2} ms vs {:.2} ms of MCU time",
        base_cycles as f64 / 1.1e9 * 1e3,
        hht_cycles as f64 / 1.1e9 * 1e3
    );
}
