//! Edge-sensor scenario: sparse-matrix x sparse-vector on an MCU (§2's
//! "real-time machine learning based inference engines ... on low-power
//! sensors"). The activation vector of an event-driven sensor front-end is
//! itself sparse, so the kernel is SpMSpV and the choice between the two
//! HHT variants of §5.1 matters.
//!
//! ```text
//! cargo run --release --example edge_sensor
//! ```

use hht::sparse::generate;
use hht::system::config::SystemConfig;
use hht::system::runner;

fn main() {
    let cfg = SystemConfig::paper_default();
    let n = 256;
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "sparsity", "baseline", "variant1", "variant2", "v1 cpu-idle", "v2 cpu-idle"
    );
    // Sweep the event rate: a quiet sensor produces a very sparse
    // activation vector, a busy one a dense-ish vector.
    for sparsity in [0.5, 0.7, 0.9, 0.95] {
        let m = generate::random_csr(n, n, sparsity, 0xE0 + (sparsity * 100.0) as u64);
        let x = generate::random_sparse_vector(n, sparsity, 0xF0 + (sparsity * 100.0) as u64);
        let base = runner::run_spmspv_baseline(&cfg, &m, &x);
        let v1 = runner::run_spmspv_hht_v1(&cfg, &m, &x);
        let v2 = runner::run_spmspv_hht_v2(&cfg, &m, &x);
        assert!(v1.y.max_abs_diff(&base.y) < 1e-3);
        assert!(v2.y.max_abs_diff(&base.y) < 1e-3);
        println!(
            "{:>8.0}% {:>10} {:>10} {:>10} {:>11.1}% {:>11.1}%",
            sparsity * 100.0,
            base.stats.cycles,
            v1.stats.cycles,
            v2.stats.cycles,
            v1.stats.cpu_wait_frac() * 100.0,
            v2.stats.cpu_wait_frac() * 100.0,
        );
    }
    println!();
    println!("variant-1 supplies aligned (matrix, vector) pairs — less CPU work,");
    println!("but the HHT does the whole merge and the CPU idles (Fig. 7).");
    println!("variant-2 supplies value-or-zero per matrix nnz — the CPU multiplies");
    println!("zeros at high sparsity but is rarely stalled (Sec. 5.1).");
}
