//! DNN edge-inference scenario (the paper's motivating workload, §2/§5.4):
//! the fully-connected classifier layer of a quantized network running on
//! a microcontroller-class core, with and without the HHT, including the
//! §5.5 energy derivation.
//!
//! ```text
//! cargo run --release --example dnn_inference [network]
//! ```

use hht::energy::{energy_savings, ClockSpeed, ProcessNode};
use hht::sparse::{generate, SparseFormat};
use hht::system::config::SystemConfig;
use hht::system::runner;
use hht::workloads::dnn;

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "MobileNet".to_string());
    let layer = dnn::suite()
        .into_iter()
        .find(|l| l.network.eq_ignore_ascii_case(&want))
        .unwrap_or_else(|| {
            eprintln!("unknown network {want}; available:");
            for l in dnn::suite() {
                eprintln!("  {}", l.network);
            }
            std::process::exit(2);
        });

    println!("network:      {}", layer.network);
    let weights = layer.weights();
    println!(
        "FC layer:     {}x{} weights, {:.0}% sparse ({} non-zeros)",
        weights.rows(),
        weights.cols(),
        weights.sparsity() * 100.0,
        weights.nnz()
    );

    // One inference = SpMV of the weight matrix against the activation
    // vector coming out of the backbone.
    let activations = generate::random_dense_vector(weights.cols(), 7);
    let cfg = SystemConfig::paper_default();
    let base = runner::run_spmv_baseline(&cfg, &weights, &activations);
    let hht = runner::run_spmv_hht(&cfg, &weights, &activations);
    let speedup = base.stats.cycles as f64 / hht.stats.cycles as f64;
    println!("baseline:     {} cycles", base.stats.cycles);
    println!("with HHT:     {} cycles ({speedup:.2}x)", hht.stats.cycles);

    // §5.5 energy: at the synthesis corner (16 nm, 50 MHz MCU clock) the
    // core+HHT draws more power but finishes sooner.
    let e =
        energy_savings(base.stats.cycles, hht.stats.cycles, ProcessNode::N16, ClockSpeed::MHz50);
    println!(
        "power:        {:.0} uW core-only vs {:.0} uW core+HHT",
        e.baseline_power_w * 1e6,
        e.hht_power_w * 1e6
    );
    println!(
        "energy/infer: {:.2} nJ -> {:.2} nJ ({:+.1}% saved)",
        e.baseline_j * 1e9,
        e.hht_j * 1e9,
        e.savings() * 100.0
    );

    // Classification result: index of the max logit.
    let best = hht
        .y
        .as_slice()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty output");
    println!("argmax class: {best}");
}
