//! Tour of the sparse representations of §1: storage footprint of the same
//! matrix in every format this library implements, plus the §6 SMASH-HHT
//! run.
//!
//! ```text
//! cargo run --release --example format_zoo [sparsity]
//! ```

use hht::sparse::{
    generate, BcsrMatrix, BitVectorMatrix, CooMatrix, CscMatrix, DiaMatrix, EllMatrix, RleMatrix,
    SmashMatrix, SparseFormat,
};
use hht::system::config::SystemConfig;
use hht::system::runner;

fn main() {
    let sparsity: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.85);
    let n = 128;
    let csr = generate::random_csr(n, n, sparsity, 99);
    let triplets = csr.triplets();
    let dense_bytes = n * n * 4;
    println!(
        "matrix: {n}x{n}, {} non-zeros ({:.0}% sparse), dense = {dense_bytes} bytes\n",
        csr.nnz(),
        csr.sparsity() * 100.0
    );

    let coo = CooMatrix::from_triplets(n, n, &triplets).unwrap();
    let csc = CscMatrix::from_triplets(n, n, &triplets).unwrap();
    let bcsr = BcsrMatrix::from_triplets(n, n, 4, 4, &triplets).unwrap();
    let bv = BitVectorMatrix::from_triplets(n, n, &triplets).unwrap();
    let rle = RleMatrix::from_triplets(n, n, &triplets).unwrap();
    let ell = EllMatrix::from_triplets(n, n, &triplets).unwrap();
    let dia = DiaMatrix::from_triplets(n, n, &triplets).unwrap();
    let smash = SmashMatrix::from_triplets(n, n, &triplets).unwrap();

    println!("{:>22} {:>12} {:>12}", "format", "bytes", "vs dense");
    let report = |name: &str, bytes: usize| {
        println!("{:>22} {:>12} {:>11.1}%", name, bytes, bytes as f64 / dense_bytes as f64 * 100.0);
    };
    report("dense", dense_bytes);
    report("COO", coo.storage_bytes());
    report("CSR", csr.storage_bytes());
    report("CSC", csc.storage_bytes());
    report("BCSR (4x4 blocks)", bcsr.storage_bytes());
    report("bit-vector", bv.storage_bytes());
    report("run-length", rle.storage_bytes());
    report(&format!("ELL (k={})", ell.k()), ell.storage_bytes());
    report(&format!("DIA ({} diagonals)", dia.num_diagonals()), dia.storage_bytes());
    report(&format!("SMASH ({} levels)", smash.num_levels()), smash.storage_bytes());
    println!("BCSR fill ratio: {:.2} stored slots per true non-zero", bcsr.fill_ratio());

    // Every format reconstructs the same matrix.
    assert_eq!(coo.triplets(), triplets);
    assert_eq!(csc.triplets(), triplets);
    assert_eq!(bcsr.triplets(), triplets);
    assert_eq!(bv.triplets(), triplets);
    assert_eq!(rle.triplets(), triplets);
    assert_eq!(ell.triplets(), triplets);
    assert_eq!(dia.triplets(), triplets);
    assert_eq!(smash.triplets(), triplets);

    // §6: the HHT programmed for SMASH (hierarchical bitmaps) vs CSR.
    let cfg = SystemConfig::paper_default();
    let v = generate::random_dense_vector(n, 100);
    let via_csr = runner::run_spmv_hht(&cfg, &csr, &v);
    let via_smash = runner::run_smash_spmv_hht(&cfg, &smash, &v);
    assert!(via_csr.y.max_abs_diff(&via_smash.y) < 1e-3);
    println!("\nHHT SpMV via CSR:   {} cycles", via_csr.stats.cycles);
    println!(
        "HHT SpMV via SMASH: {} cycles (more indexing work in the HHT, Sec. 6)",
        via_smash.stats.cycles
    );
}
