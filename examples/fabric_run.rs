//! Multi-tile fabric demo: row-block sharded SpMV across 4 CPU+HHT tiles
//! over a banked shared memory.
//!
//! ```text
//! cargo run --release --example fabric_run
//! ```
//!
//! Runs the same SpMV problem on one tile and on a 4-tile fabric (8 shared
//! banks, round-robin arbitration), prints the wall-cycle speedup, the
//! shared-memory bank-conflict accounting and a per-tile stall breakdown,
//! and writes a Chrome trace-event JSON file with **one process lane per
//! tile** — open it in `chrome://tracing` or <https://ui.perfetto.dev> to
//! see all four tiles' CPU stalls, HHT back-end activity and bank
//! arbitration side by side on one cycle axis.

use hht::obs::chrome::chrome_trace_json_tiles;
use hht::sparse::generate;
use hht::system::config::{SystemConfig, TraceConfig};
use hht::system::{runner, FabricConfig};

fn main() {
    let n = 256;
    let cfg = SystemConfig::paper_default().with_trace(TraceConfig::enabled());
    // The paper's headline shape at reduced n: 10% density (90% sparsity).
    let m = generate::random_csr(n, n, 0.9, 0xFAB);
    let v = generate::random_dense_vector(n, 0xFAC);

    let single = runner::run_spmv_fabric(&cfg, FabricConfig::scaled(1), &m, &v);
    let fabric = runner::run_spmv_fabric(&cfg, FabricConfig::scaled(4), &m, &v);
    let s = &fabric.stats;

    println!("== SpMV {n}x{n}, 90% sparsity: 1 tile vs 4 tiles ==");
    println!("1-tile wall cycles   {:>8}", single.stats.cycles);
    println!("4-tile wall cycles   {:>8}", s.cycles);
    println!("speedup              {:>8.3}x", single.stats.cycles as f64 / s.cycles as f64);
    println!(
        "bank conflicts       {:>8}  ({:.1}% of {} accesses, {} cross-tile)",
        s.mem.conflicts,
        100.0 * s.bank_conflict_frac(),
        s.mem.accesses,
        s.mem.cross_tile_conflicts,
    );

    println!("\nper-tile breakdown (each tile's own completion cycle):");
    for (t, tile) in s.tiles.iter().enumerate() {
        let snap = tile.snapshot();
        snap.validate().expect("per-tile stall histogram must sum to the wait counters");
        println!(
            "  tile {t}: {:>7} cycles, {:>6} instrs, {:>6} elements via HHT",
            tile.cycles, tile.core.instructions, tile.hht.elements_delivered
        );
        for (label, cycles) in snap.stalls.entries() {
            if cycles > 0 {
                let pct = 100.0 * cycles as f64 / tile.cycles as f64;
                println!("    {label:<18} {cycles:>7}  ({pct:5.1}% of tile run)");
            }
        }
    }

    let merged = s.merged().snapshot();
    merged.validate().expect("merged stall histogram must sum to the wait counters");
    println!(
        "\nmerged: {} tile-cycles total, cpu_wait {:.4}, hht_wait {:.4}",
        merged.cycles, merged.cpu_wait_frac, merged.hht_wait_frac
    );

    let trace_path = std::env::temp_dir().join("hht_fabric_trace.json");
    std::fs::write(&trace_path, chrome_trace_json_tiles(&fabric.tile_events)).expect("write trace");
    println!(
        "\n{} events across {} tile lanes; Chrome trace written to {}",
        fabric.tile_events.iter().map(Vec::len).sum::<usize>(),
        fabric.tile_events.len(),
        trace_path.display()
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev");
}
