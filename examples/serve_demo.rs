//! Serving demo: a mixed-tenant request stream through the warm-fabric
//! job service.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! Five tenants with different traffic shapes share one 4-tile fabric:
//! tenant 0 hammers one hot matrix (replay-tier traffic), tenant 1
//! cycles a working set of medium matrices with fresh operands (plan-tier
//! and warm-pool traffic), tenants 2 and 3 stream unique small jobs (their
//! waves batch into block-diagonal passes) and tenant 4 occasionally
//! submits one large job. The demo prints the serving counters, a
//! per-tenant latency/fairness table, and the naive one-shot comparison.

use hht::serve::{naive_run_stream, percentile_us, Request, Served, Service, ServiceConfig};
use hht::sparse::generate;
use hht::system::config::SystemConfig;
use hht::system::FabricConfig;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let cfg = SystemConfig::paper_default();
    let fab = FabricConfig::scaled(4);

    // Tenant 0: one hot 128x128 job, resubmitted over and over.
    let hot_m = Arc::new(generate::random_csr(128, 128, 0.9, 0x10));
    let hot_v = Arc::new(generate::random_dense_vector(128, 0x11));
    // Tenant 1: a working set of three 192x192 matrices with fresh
    // operands each round (plan hits, not replays).
    let ws: Vec<_> =
        (0..3).map(|k| Arc::new(generate::random_csr(192, 192, 0.9, 0x20 + k))).collect();
    // Tenant 4: one 384x384 heavyweight.
    let big_m = Arc::new(generate::random_csr(384, 384, 0.9, 0x30));
    let big_x = Arc::new(generate::random_sparse_vector(384, 0.8, 0x31));

    let mut requests = Vec::new();
    for round in 0..24u64 {
        requests.push(Request::spmv(0, Arc::clone(&hot_m), Arc::clone(&hot_v)));
        requests.push(Request::spmv(
            1,
            Arc::clone(&ws[(round % 3) as usize]),
            Arc::new(generate::random_dense_vector(192, 0x40 + round)),
        ));
        // Tenants 2 and 3: one unique small job each per round — they
        // land in the same wave, where the packer batches them.
        for j in 0..2 {
            let n = 48 + 8 * ((round + j) % 4) as usize;
            requests.push(Request::spmv(
                2 + j as usize,
                Arc::new(generate::random_csr(n, n, 0.9, 0x50 + 2 * round + j)),
                Arc::new(generate::random_dense_vector(n, 0x60 + 2 * round + j)),
            ));
        }
        if round % 6 == 0 {
            requests.push(Request::spmspv_v2(4, Arc::clone(&big_m), Arc::clone(&big_x)));
        }
    }

    println!("== {} requests from 5 tenants over a 4-tile fabric ==", requests.len());
    let t0 = Instant::now();
    let naive = naive_run_stream(&cfg, fab, &requests);
    let naive_secs = t0.elapsed().as_secs_f64();
    drop(naive);
    println!(
        "naive one-shot loop: {naive_secs:.3}s ({:.1} jobs/s)",
        requests.len() as f64 / naive_secs
    );

    // Batch only genuinely small jobs (tenant 2's stream); the hot and
    // working-set jobs stay singleton so the replay and plan tiers serve
    // them.
    let scfg = ServiceConfig { batch_row_threshold: 80, ..ServiceConfig::default() };
    let mut svc = Service::new(cfg, fab, scfg);
    let t0 = Instant::now();
    let responses = svc.run_stream(&requests);
    let serve_secs = t0.elapsed().as_secs_f64();
    let stats = svc.stats();
    println!(
        "service:             {serve_secs:.3}s ({:.1} jobs/s, {:.2}x naive)",
        requests.len() as f64 / serve_secs,
        naive_secs / serve_secs
    );
    println!(
        "\nwaves {}  replay hits {}/{} ({:.0}%)  plan hits {}  batches {} ({} jobs)  pool reuse {:.0}%  {:.2} Mcycles simulated",
        stats.waves,
        stats.replay_hits,
        stats.requests,
        100.0 * stats.hit_rate(),
        stats.plan_hits,
        stats.batches,
        stats.batched_jobs,
        100.0 * stats.pool_reuse_rate(),
        stats.sim_cycles as f64 / 1e6,
    );

    println!("\nper-tenant latency / fairness:");
    println!(
        "  {:<8} {:>5} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "tenant", "jobs", "replays", "batched", "p50 (us)", "p99 (us)", "waves"
    );
    for tenant in 0..5usize {
        let mine: Vec<_> = responses.iter().filter(|r| r.tenant == tenant).collect();
        let lats: Vec<_> = mine.iter().map(|r| r.latency).collect();
        let replays = mine.iter().filter(|r| r.served == Served::ReplayHit).count();
        let batched = mine.iter().filter(|r| r.batch_size > 1).count();
        // With round-robin admission a tenant's k-th request rides wave k,
        // so its wave span equals its own job count — burst size of OTHER
        // tenants never inflates it.
        println!(
            "  {:<8} {:>5} {:>8} {:>8} {:>10.0} {:>10.0} {:>8}",
            tenant,
            mine.len(),
            replays,
            batched,
            percentile_us(&lats, 50.0),
            percentile_us(&lats, 99.0),
            mine.len(),
        );
    }
    println!(
        "\nevery y is bit-identical to a cold one-shot run of the same job\n\
         (pinned by tests/determinism.rs::serving_is_bit_identical_to_cold_runs)"
    );
}
