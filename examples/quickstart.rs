//! Quickstart: run SpMV with and without the Hardware Helper Thread.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random 128x128 CSR matrix at 70 % sparsity, runs the paper's
//! Algorithm-1 baseline and the HHT-assisted kernel on the cycle-level
//! system model, checks both against the golden result, and prints the
//! cycle counts.

use hht::sparse::{generate, SparseFormat};
use hht::system::config::SystemConfig;
use hht::system::runner;

fn main() {
    // Table-1 configuration: RV32 with VL=8, ASIC HHT with 2 buffers.
    let cfg = SystemConfig::paper_default();

    // A reproducible random sparse matrix and dense vector.
    let m = generate::random_csr(128, 128, 0.7, 42);
    let v = generate::random_dense_vector(128, 43);
    println!(
        "matrix: {}x{}, {} non-zeros ({:.0}% sparse)",
        m.rows(),
        m.cols(),
        m.nnz(),
        m.sparsity() * 100.0
    );

    // Baseline: the CPU does everything, including the v[cols[k]] gather.
    let base = runner::run_spmv_baseline(&cfg, &m, &v);
    println!("baseline (CPU only):   {:>9} cycles", base.stats.cycles);

    // HHT: the accelerator walks the metadata and pre-gathers v values.
    let hht = runner::run_spmv_hht(&cfg, &m, &v);
    println!("with HHT:              {:>9} cycles", hht.stats.cycles);
    println!("speedup:               {:>9.2}x", base.stats.cycles as f64 / hht.stats.cycles as f64);
    println!("CPU waited for HHT:    {:>8.1}% of cycles", hht.stats.cpu_wait_frac() * 100.0);

    // Both runners verified the numeric result against the golden kernel;
    // show a couple of entries anyway.
    println!("y[0..4] = {:?}", &hht.y.as_slice()[..4]);
    assert_eq!(base.y, hht.y);
}
