//! Offline stand-in for the `rand` crate covering the API surface this
//! workspace uses: `SmallRng::seed_from_u64` plus `Rng::gen_range` over
//! integer and float ranges. The generator is splitmix64 — statistically
//! solid for test-data generation and fully deterministic per seed, though
//! its streams differ from upstream `rand`'s `SmallRng` (callers only rely
//! on same-seed reproducibility, not on specific values).

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding trait; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0,1]");
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire's multiply-shift bounded sampling; the bias is at
                // most span/2^64, far below anything observable here.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                (start as u64).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast deterministic RNG (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&v));
            let i = rng.gen_range(5usize..17);
            assert!((5..17).contains(&i));
            let s = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&s));
        }
    }

    #[test]
    fn values_cover_the_range() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
