//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `criterion_group!`/`criterion_main!`) with a
//! simple wall-clock harness: per benchmark it calibrates an iteration
//! count, takes `sample_size` timed samples, and prints mean ± standard
//! deviation (plus element throughput when configured). No plotting, no
//! statistical regression — adequate for relative comparisons such as the
//! observability-overhead bench.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Minimum time per timed sample; iteration counts are calibrated to it.
const TARGET_SAMPLE_NANOS: f64 = 2_000_000.0;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) {
        let samples = self.default_sample_size;
        run_benchmark(&name.to_string(), samples, None, f);
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be non-zero");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    target_samples: usize,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least TARGET_SAMPLE_NANOS.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            if nanos >= TARGET_SAMPLE_NANOS || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 2;
        }
        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / self.iters_per_sample as f64);
        }
    }

    fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.1} ns")
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher =
        Bencher { iters_per_sample: 1, samples: Vec::new(), target_samples: sample_size };
    f(&mut bencher);
    let mean = bencher.mean();
    let sd = bencher.stddev();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / mean * 1e3)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  thrpt: {:.3} MiB/s", n as f64 / mean * 1e9 / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} time: [{} ± {}] ({} samples × {} iters){rate}",
        format_nanos(mean),
        format_nanos(sd),
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("id", 7), &7u32, |b, x| {
            b.iter(|| black_box(*x * 2))
        });
        group.finish();
        assert!(calls > 0);
    }
}
