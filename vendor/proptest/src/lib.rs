//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, `Just`, `any`, `prop_oneof!`, `collection::vec`, the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros, and a
//! [`test_runner::TestRunner`] that executes N random cases. Failing inputs
//! are reported but **not shrunk** — acceptable for CI-style pass/fail use.
//! Case generation is seeded deterministically so test runs are
//! reproducible and hermetic.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy just produces values directly from the runner's RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as u64).wrapping_add(rng.below(span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $m:ident),*) => {$(
            impl Arbitrary for $t {
                type Strategy = crate::num::$m::Any;

                fn arbitrary() -> Self::Strategy {
                    crate::num::$m::ANY
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                        i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize);
}

/// Whole-domain integer strategies (`proptest::num::u32::ANY` etc.).
pub mod num {
    macro_rules! num_any_module {
        ($($m:ident: $t:ty),*) => {$(
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    num_any_module!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
                    i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: u64,
        hi: u64,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n as u64, hi: n as u64 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start as u64, hi: r.end as u64 - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start() as u64, hi: *r.end() as u64 }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;
    use std::fmt;

    /// Deterministically seeded RNG driving all strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        fn new() -> Self {
            // Fixed seed: hermetic, reproducible test runs.
            TestRng { state: 0x9042_8c4b_15a3_77d1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Per-case failure, produced by the `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Whole-run failure; `Debug` output carries the failing input.
    pub struct TestError(String);

    impl fmt::Debug for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "proptest failure: {}", self.0)
        }
    }

    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new(Config::default())
        }
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            TestRunner { config, rng: TestRng::new() }
        }

        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), TestError>
        where
            S::Value: fmt::Debug,
        {
            for case in 0..self.config.cases {
                let input = strategy.generate(&mut self.rng);
                let desc = format!("{input:?}");
                match test(input) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(reason)) => {
                        return Err(TestError(format!(
                            "case {case} failed: {reason}\n  input: {desc}"
                        )));
                    }
                }
            }
            Ok(())
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            let strategy = ($($strategy,)+);
            runner
                .run(&strategy, |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                })
                .unwrap();
        }
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_compose(x in 1u8..10, y in (0i32..5).prop_map(|v| v * 2)) {
            prop_assert!((1..10).contains(&x));
            prop_assert_eq!(y % 2, 0);
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..=4).prop_flat_map(|n| crate::collection::vec(0u32..100, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
        }

        #[test]
        fn oneof_covers_alternatives(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    #[test]
    fn failures_are_reported() {
        let mut runner = crate::test_runner::TestRunner::default();
        let err = runner.run(&(0u8..10), |v| {
            prop_assert!(v < 5, "too big: {v}");
            Ok(())
        });
        assert!(err.is_err());
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let mut rng_vals = Vec::new();
            let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(32));
            runner
                .run(&(0u64..1_000_000), |v| {
                    rng_vals.push(v);
                    Ok(())
                })
                .unwrap();
            rng_vals
        };
        assert_eq!(collect(), collect());
    }
}
