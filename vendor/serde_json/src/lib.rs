//! Offline stand-in for `serde_json`, rendering and parsing the vendored
//! `serde` [`Value`] tree. Output is deterministic: map entries keep their
//! insertion (struct field) order and formatting is fixed, so serialized
//! artifacts are byte-stable across runs — a property the trace golden-file
//! tests rely on.

pub use serde::{Error, Number, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serialize `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out)?,
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_composite(items.iter().map(|i| (None, i)), indent, depth, ('[', ']'), out)?
        }
        Value::Map(pairs) => write_composite(
            pairs.iter().map(|(k, v)| (Some(k.as_str()), v)),
            indent,
            depth,
            ('{', '}'),
            out,
        )?,
    }
    Ok(())
}

fn write_composite<'a>(
    items: impl ExactSizeIterator<Item = (Option<&'a str>, &'a Value)>,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    out: &mut String,
) -> Result<(), Error> {
    out.push(open);
    let empty = items.len() == 0;
    for (i, (key, item)) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        if let Some(k) = key {
            write_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
        }
        write_value(item, indent, depth + 1, out)?;
    }
    if !empty {
        newline_indent(indent, depth, out);
    }
    out.push(close);
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_number(n: Number, out: &mut String) -> Result<(), Error> {
    use std::fmt::Write;
    match n {
        Number::U(v) => write!(out, "{v}").unwrap(),
        Number::I(v) => write!(out, "{v}").unwrap(),
        Number::F(v) => {
            if !v.is_finite() {
                return Err(Error::msg("non-finite float is not representable in JSON"));
            }
            // `{}` prints the shortest round-trippable form; whole floats
            // print without a fraction, which parses back as an integer —
            // numeric casts on deserialize make that lossless for our types.
            write!(out, "{v}").unwrap();
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    pairs.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(pairs));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n = if is_float {
            Number::F(text.parse::<f64>().map_err(|e| Error::msg(format!("bad number: {e}")))?)
        } else if text.starts_with('-') {
            Number::I(text.parse::<i64>().map_err(|e| Error::msg(format!("bad number: {e}")))?)
        } else {
            Number::U(text.parse::<u64>().map_err(|e| Error::msg(format!("bad number: {e}")))?)
        };
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_nested_values() {
        let v = Value::Map(vec![
            ("a".into(), Value::Num(Number::U(7))),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":7,"b":[true,null],"c":"x\"y\n"}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented_and_stable() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::Num(Number::I(-3))]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    -3\n  ]\n}");
        assert_eq!(s, to_string_pretty(&v).unwrap());
    }

    #[test]
    fn floats_round_trip_through_text() {
        let s = to_string(&1.5f64).unwrap();
        assert_eq!(s, "1.5");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1.5);
        // Whole floats print as integers and cast back losslessly.
        assert_eq!(to_string(&2.0f64).unwrap(), "2");
        let back: f64 = from_str("2").unwrap();
        assert_eq!(back, 2.0);
    }
}
