//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the two
//! shapes this workspace actually uses — non-generic named-field structs and
//! unit-variant enums (optionally with explicit discriminants) — using only
//! the built-in `proc_macro` crate, since `syn`/`quote` are unavailable in
//! this offline build environment. Generated impls target the vendored
//! value-tree `serde` API.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skip one attribute (`#[...]`, including doc comments) if present.
fn skip_attribute(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    match iter.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
            iter.next();
            match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => true,
                other => panic!("serde derive: malformed attribute, found {other:?}"),
            }
        }
        _ => false,
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_visibility(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    while skip_attribute(&mut iter) {}
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde derive stub does not support generic type `{name}`")
            }
            Some(_) => continue,
            None => {
                panic!("serde derive: `{name}` has no braced body (tuple/unit items unsupported)")
            }
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_named_fields(body) },
        "enum" => Item::Enum { name, variants: parse_unit_variants(body) },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        while skip_attribute(&mut iter) {}
        skip_visibility(&mut iter);
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after `{field}`, found {other:?}"),
        }
        // Consume the type, honouring `<...>` nesting so generic arguments'
        // commas don't terminate the field early.
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
            }
        }
        fields.push(field);
    }
    fields
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        while skip_attribute(&mut iter) {}
        let variant = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        // Only unit variants (optionally `= discriminant`) are supported.
        loop {
            match iter.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(TokenTree::Group(g)) if g.delimiter() != Delimiter::None => {
                    panic!("serde derive stub: variant `{variant}` carries data (unsupported)")
                }
                Some(_) => {}
            }
        }
        variants.push(variant);
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                         ::std::result::Result::Ok({name}::{v}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value.as_str() {{\n\
                             {arms}\n\
                             _ => ::std::result::Result::Err(::serde::Error::msg(\
                                 \"unknown variant of {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde derive: generated Deserialize impl parses")
}
