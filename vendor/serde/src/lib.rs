//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, API-compatible subset of serde: the
//! `Serialize`/`Deserialize` traits (routed through an owned [`Value`]
//! tree rather than serde's visitor machinery) plus derive macros for
//! named-field structs and unit-variant enums — exactly the shapes this
//! repository serializes. `serde_json` (also vendored) renders and parses
//! the `Value` tree.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Serialization error (also reused by the vendored `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// An exact JSON-like number: integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// Owned serialization tree; maps preserve insertion (field) order so
/// rendered output is deterministic and byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Value::get`] but returns a decode error naming the key.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key).ok_or_else(|| Error::msg(format!("missing field `{key}`")))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<Number> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_num()
                    .and_then(Number::as_u64)
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_num()
                    .and_then(Number::as_i64)
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_num().map(Number::as_f64).ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::msg("expected 2-tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::msg("expected 3-tuple")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            _ => Err(Error::msg("expected map")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<u16> = Deserialize::from_value(&vec![1u16, 2, 3].to_value()).unwrap();
        assert_eq!(v, [1, 2, 3]);
        let t: (usize, usize) = Deserialize::from_value(&(4usize, 5usize).to_value()).unwrap();
        assert_eq!(t, (4, 5));
    }

    #[test]
    fn map_lookup_reports_missing_fields() {
        let m = Value::Map(vec![("x".into(), Value::Bool(true))]);
        assert!(m.field("x").is_ok());
        assert!(m.field("y").unwrap_err().0.contains("`y`"));
    }
}
